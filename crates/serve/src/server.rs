//! The event-driven, shard-per-core TCP front of the estimation service.
//!
//! One nonblocking listener is shared by N reactor shards (one per core
//! by default), each running its own readiness loop on an [`lc_poll`]
//! poller. The listener is registered in every shard with the
//! exclusive-wakeup flag, so the kernel wakes one shard per incoming
//! connection, and an accepted connection is owned *outright* by the
//! shard that accepted it: socket, partial frames, write backlog, and
//! in-flight estimates never cross shards, so there is no per-request
//! locking anywhere on the serving path.
//!
//! ## Memory per connection
//!
//! The old front spawned a thread per connection — a stack plus buffered
//! reader/writer per peer, megabytes each. Here an *idle* connection is
//! one slab slot: a nonblocking `TcpStream` plus two empty `Vec`s.
//! Bytes are read into a per-shard scratch buffer; only a partial frame
//! spills into the connection's own buffer, and only until the frame
//! completes. That is what lets one process hold tens of thousands of
//! mostly-idle connections.
//!
//! ## Event-driven micro-batching
//!
//! Each shard owns a manual-flush (`workers: 0`) [`MicroBatcher`] and
//! flushes it at the end of every readiness pass: estimate requests
//! decoded from all the connections that woke together coalesce into
//! shared forward passes on the shard's own (pinned) core, without
//! handing work to another thread. Concurrency in the arrival process is
//! what creates batching — the paper's amortization argument — with no
//! added queueing delay for sparse traffic.
//!
//! ## Admission control and load shedding
//!
//! Two bounds protect tail latency under overload (see
//! [`FrontConfig`]): a global cap on open connections, enforced at
//! accept, and a per-shard budget of estimates in flight between
//! micro-batch flushes. A request over budget is shed *before*
//! featurization: clients that negotiated [`CAP_RETRY`] get a
//! [`Message::Busy`] frame carrying a retry hint, everyone else (v1,
//! hello-less, or opted out) gets a plain [`Message::Error`] — either
//! way the connection stays open and the next request is admitted
//! normally.
//!
//! ## Protocol negotiation
//!
//! Unchanged from the threaded front: a v2 client opens with
//! [`Message::Hello`] and the connection then decodes at the negotiated
//! version with the negotiated capabilities; a v1 client sends no hello
//! and stays in the pre-hello state, where the server decodes at its own
//! maximum version — v1 traffic (kinds 1–5) works byte-identically.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use lc_obs::{metrics, MetricKind, ShardMetrics, SpanTimer};
use lc_query::Query;

use crate::batcher::{BatchedEstimate, BatcherConfig, MicroBatcher};
use crate::cache::CachedEstimate;
use crate::config::FrontConfig;
use crate::service::{CacheProbe, EstimationService, ServeError};
use crate::wire::{
    negotiate, HistogramMetric, Message, ScalarMetric, CAPABILITIES, CAP_DRIFT, CAP_FEEDBACK,
    CAP_METRICS, CAP_RETRY, CAP_STATS, CAP_TIER, PROTOCOL_VERSION,
};

/// Cap on outgoing error messages, so an Error reply echoing
/// client-supplied content can never exceed [`crate::wire::MAX_FRAME_LEN`]
/// and become undecodable by a conforming client.
const MAX_ERROR_MESSAGE: usize = 512;

/// Poller token of the shared listener.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the shard's shutdown waker.
const TOKEN_WAKER: u64 = 1;
/// Connection in slot `s` polls as token `TOKEN_BASE + s`.
const TOKEN_BASE: u64 = 2;

// Connection buffers are released the moment they drain: an idle
// connection owns zero heap, which is what keeps 10k+ mostly-idle
// connections to ~100 bytes of resident memory each (the slot entry
// itself). Active connections pay one small (re)allocation per
// response burst / split frame — noise next to the socket syscalls.

fn error_message(id: u64, mut message: String) -> Message {
    if message.len() > MAX_ERROR_MESSAGE {
        let mut cut = MAX_ERROR_MESSAGE;
        while !message.is_char_boundary(cut) {
            cut -= 1;
        }
        message.truncate(cut);
        message.push('…');
    }
    Message::Error { id, message }
}

/// Build a [`Message::MetricsSnapshot`] of the whole `lc_obs` catalog.
/// Gauges that mirror state owned elsewhere (active model version, cache
/// population, pool size) are refreshed here, at snapshot time, instead
/// of being maintained on hot paths that already have the state.
fn metrics_snapshot(service: &EstimationService, id: u64) -> Message {
    metrics::MODEL_VERSION.set(u64::from(service.registry().active_version()));
    metrics::CACHE_ENTRIES.set(service.cache_stats().entries as u64);
    metrics::POOL_WORKERS.set(lc_nn::WorkerPool::global().workers() as u64);
    let snap = lc_obs::snapshot();
    Message::MetricsSnapshot {
        id,
        uptime_ns: snap.uptime_ns,
        scalars: snap
            .scalars
            .iter()
            .map(|s| ScalarMetric { id: s.id, gauge: s.kind == MetricKind::Gauge, value: s.value })
            .collect(),
        histograms: snap
            .histograms
            .iter()
            .map(|h| HistogramMetric {
                id: h.id,
                sum: h.snapshot.sum,
                max: h.snapshot.max,
                buckets: h.snapshot.buckets,
            })
            .collect(),
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::fd::AsRawFd>(io: &T) -> i32 {
    io.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_io: &T) -> i32 {
    -1
}

/// A running server: its bound address plus shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wakers: Vec<lc_poll::Waker>,
    shards: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of reactor shards this server is running.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Block the calling thread until the reactor shards exit (i.e.
    /// until the process dies or another thread owns shutdown). This is
    /// what the `serve` binary parks on.
    pub fn wait(mut self) {
        for shard in self.shards.drain(..) {
            shard.join().expect("reactor shard panicked");
        }
    }

    /// Stop the server and join every shard. Each shard wakes from its
    /// readiness wait immediately (no poke connection, no lingering
    /// accept), answers the requests already decoded, and closes its
    /// connections — so `shutdown` returns promptly even with idle
    /// clients still connected. The service itself (and its batcher)
    /// stays usable until dropped.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A handle dropped without an explicit wait()/shutdown() (e.g.
        // by a panicking test) must not leave reactor threads behind.
        self.stop_and_join();
    }
}

/// Bind `addr` and serve `service` until the handle is shut down, with
/// the shard count and admission policy from the service's
/// [`FrontConfig`].
pub fn serve(
    service: Arc<EstimationService>,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle> {
    let front = service.front_config();
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let listener = Arc::new(listener);
    let shard_count = if front.shards == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    } else {
        front.shards
    };
    let stop = Arc::new(AtomicBool::new(false));
    let open_connections = Arc::new(AtomicUsize::new(0));
    let mut wakers = Vec::with_capacity(shard_count);
    let mut shards = Vec::with_capacity(shard_count);
    for shard_id in 0..shard_count {
        let poller = lc_poll::Poller::new()?;
        let waker = poller.waker(TOKEN_WAKER)?;
        // Exclusive wakeup: of the N shards polling this listener the
        // kernel wakes one per incoming connection, not all of them.
        poller.add(raw_fd(&*listener), TOKEN_LISTENER, lc_poll::READ, true)?;
        wakers.push(waker.clone());
        let mut shard = Shard {
            id: shard_id,
            service: Arc::clone(&service),
            batcher: MicroBatcher::new(
                Arc::clone(service.registry()),
                BatcherConfig { workers: 0, ..service.batcher_config() },
            ),
            listener: Arc::clone(&listener),
            poller,
            waker,
            front,
            stop: Arc::clone(&stop),
            open_connections: Arc::clone(&open_connections),
            obs: lc_obs::shard_metrics(shard_id),
            slots: Vec::new(),
            free: Vec::new(),
            pending: Vec::new(),
            dirty: Vec::new(),
            read_buf: vec![0u8; 64 * 1024],
            scratch: Vec::new(),
        };
        shards.push(
            std::thread::Builder::new()
                .name(format!("lc-shard-{shard_id}"))
                .spawn(move || shard.run())
                .expect("spawn reactor shard"),
        );
    }
    Ok(ServerHandle { addr: local, stop, wakers, shards })
}

/// One connection owned by a shard. An idle connection keeps both
/// buffers empty — its footprint is this struct plus the socket.
struct Conn {
    stream: TcpStream,
    /// Negotiated (or pre-hello maximum) protocol version.
    version: u8,
    /// Negotiated (or pre-hello full) capability set.
    caps: u8,
    /// True once a Hello was answered: only explicitly negotiated
    /// clients may be sent v2 frames they did not ask for (Busy).
    negotiated: bool,
    /// Bytes received that do not yet form a complete frame.
    inbuf: Vec<u8>,
    /// Encoded responses not yet accepted by the socket.
    outbuf: Vec<u8>,
    /// Prefix of `outbuf` already written.
    out_pos: usize,
    /// Close once `outbuf` drains (set after a wire error or a peer
    /// half-close with responses still queued).
    close_after_drain: bool,
    /// Current poll interest includes writability.
    wants_write: bool,
    /// Already queued into `Shard::dirty` this pass.
    dirty: bool,
}

impl Conn {
    fn has_backlog(&self) -> bool {
        self.out_pos < self.outbuf.len()
    }
}

/// A slab slot. The generation outlives any one connection, so a batch
/// result resolved after the slot was reused can never reach the wrong
/// peer.
struct Slot {
    generation: u64,
    conn: Option<Conn>,
}

/// An admitted estimate (or feedback) waiting on the shard's batcher.
struct PendingReq {
    slot: usize,
    generation: u64,
    id: u64,
    /// Cache key to fill on resolution (None when caching is off).
    query_key: Option<Vec<u8>>,
    rx: Receiver<BatchedEstimate>,
    /// Set when `lc_obs` is enabled: end-to-end estimate latency.
    started: Option<Instant>,
    /// `Some((query, actual_card))` marks a feedback frame: resolution
    /// records the observation and answers with a FeedbackAck.
    feedback: Option<(Query, u64)>,
}

/// How one socket interaction left the connection.
enum IoOutcome {
    Open,
    Blocked,
    Closed,
}

struct Shard {
    id: usize,
    service: Arc<EstimationService>,
    /// This shard's own deterministic batcher (`workers: 0`), flushed
    /// inline at the end of every readiness pass.
    batcher: MicroBatcher,
    listener: Arc<TcpListener>,
    poller: lc_poll::Poller,
    waker: lc_poll::Waker,
    front: FrontConfig,
    stop: Arc<AtomicBool>,
    /// Open connections across all shards (the global accept cap).
    open_connections: Arc<AtomicUsize>,
    obs: &'static ShardMetrics,
    slots: Vec<Slot>,
    free: Vec<usize>,
    pending: Vec<PendingReq>,
    /// Slots with freshly queued output this pass.
    dirty: Vec<usize>,
    /// Shared read scratch — idle connections own no read buffer.
    read_buf: Vec<u8>,
    /// Shared encode scratch for response frames.
    scratch: Vec<u8>,
}

impl Shard {
    fn run(&mut self) {
        // Pinning follows the worker-pool policy (`LC_PIN_WORKERS`, a
        // no-op when disabled or single-core): shard i sits on core i,
        // so batched forward passes run where connection state is hot.
        lc_nn::pin_thread_to_core(self.id);
        let mut events = Vec::new();
        loop {
            if self.poller.wait(&mut events, -1).is_err() {
                break;
            }
            if !events.is_empty() {
                self.obs.wakeups.inc();
            }
            for ev in std::mem::take(&mut events) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.waker.drain(),
                    token => self.conn_ready((token - TOKEN_BASE) as usize, ev),
                }
            }
            // Event-driven micro-batching: everything decoded in this
            // pass flushes together on this core.
            while self.batcher.flush_now() > 0 {}
            self.resolve_pending();
            self.flush_dirty();
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        self.teardown();
    }

    /// Quiesce: answer what is already in flight, push out what the
    /// sockets will take, close everything.
    fn teardown(&mut self) {
        while self.batcher.flush_now() > 0 {}
        self.resolve_pending();
        self.flush_dirty();
        for slot in 0..self.slots.len() {
            self.close(slot);
        }
        self.batcher.shutdown();
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let cap = self.front.max_connections;
                    if cap > 0 && self.open_connections.fetch_add(1, Ordering::Relaxed) >= cap {
                        // Over the global cap: hand the count back and
                        // refuse by closing. The kernel accept backlog
                        // is the only queue an un-admitted peer gets.
                        self.open_connections.fetch_sub(1, Ordering::Relaxed);
                        drop(stream);
                        continue;
                    }
                    if cap == 0 {
                        self.open_connections.fetch_add(1, Ordering::Relaxed);
                    }
                    metrics::SERVE_CONNECTIONS.inc();
                    self.obs.accepted.inc();
                    // Nodelay: responses are single small frames; Nagle
                    // would add artificial latency to every estimate.
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        self.open_connections.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.slots.push(Slot { generation: 0, conn: None });
                        self.slots.len() - 1
                    });
                    let token = TOKEN_BASE + slot as u64;
                    if self.poller.add(raw_fd(&stream), token, lc_poll::READ, false).is_err() {
                        self.free.push(slot);
                        self.open_connections.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    self.slots[slot].conn = Some(Conn {
                        stream,
                        // Pre-hello: the server's own maximum version
                        // with every capability available — exactly
                        // what keeps hello-less v1 clients working.
                        version: PROTOCOL_VERSION,
                        caps: CAPABILITIES,
                        negotiated: false,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        out_pos: 0,
                        close_after_drain: false,
                        wants_write: false,
                        dirty: false,
                    });
                    self.obs.connections.set(self.live_connections() as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn live_connections(&self) -> usize {
        self.slots.iter().filter(|s| s.conn.is_some()).count()
    }

    fn conn_ready(&mut self, slot: usize, ev: lc_poll::Event) {
        if slot >= self.slots.len() || self.slots[slot].conn.is_none() {
            return; // closed earlier in this same pass
        }
        if ev.writable {
            self.write_some(slot);
        }
        if ev.readable {
            self.read_some(slot);
        }
    }

    /// Drain the socket (level-triggered: read to WouldBlock), decode
    /// every complete frame, dispatch each.
    fn read_some(&mut self, slot: usize) {
        // The scratch moves out so `decode_available(&mut self, ..)` can
        // re-borrow `self` freely; it moves back before returning.
        let mut buf = std::mem::take(&mut self.read_buf);
        while let Some(conn) = self.slots[slot].conn.as_mut() {
            let discard = conn.close_after_drain;
            let result = conn.stream.read(&mut buf);
            match result {
                Ok(0) => {
                    // Peer hung up. Responses queued this pass still go
                    // out first (the peer may only have half-closed).
                    if self.slots[slot].conn.as_ref().is_some_and(Conn::has_backlog) {
                        if let Some(conn) = self.slots[slot].conn.as_mut() {
                            conn.close_after_drain = true;
                        }
                    } else {
                        self.close(slot);
                    }
                    break;
                }
                Ok(n) => {
                    if discard {
                        // Post-wire-error: the stream position is
                        // unrecoverable; eat the bytes until close.
                        continue;
                    }
                    if !self.decode_available(slot, &buf[..n]) {
                        break; // connection torn down mid-decode
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    break;
                }
            }
        }
        self.read_buf = buf;
    }

    /// Append freshly read bytes to the connection's pending input and
    /// decode every complete frame at the connection's negotiated
    /// version. Returns false if the connection was torn down.
    fn decode_available(&mut self, slot: usize, fresh: &[u8]) -> bool {
        // Fast path: no partial frame pending — decode straight from the
        // shared read scratch and spill only the (usually empty) tail.
        let spill: Vec<u8> = {
            let conn = match self.slots[slot].conn.as_mut() {
                Some(conn) => conn,
                None => return false,
            };
            if conn.inbuf.is_empty() {
                Vec::new()
            } else {
                let mut buf = std::mem::take(&mut conn.inbuf);
                buf.extend_from_slice(fresh);
                buf
            }
        };
        let bytes: &[u8] = if spill.is_empty() { fresh } else { &spill };
        let mut offset = 0;
        loop {
            let version = match self.slots[slot].conn.as_ref() {
                Some(conn) => conn.version,
                None => return false,
            };
            match Message::decode_prefix(&bytes[offset..], version) {
                Ok(Some((message, consumed))) => {
                    offset += consumed;
                    self.dispatch(slot, message);
                    match self.slots[slot].conn.as_ref() {
                        None => return false,
                        // Wire-error path already queued its Error frame:
                        // the rest of the input is discarded unread.
                        Some(conn) if conn.close_after_drain => return true,
                        Some(_) => {}
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Malformed frame: report and close once the error
                    // frame drains (the stream position is
                    // unrecoverable). The embedded WireError already
                    // names the negotiated version.
                    metrics::SERVE_WIRE_ERRORS.inc();
                    self.respond(slot, error_message(0, e.to_string()));
                    if let Some(conn) = self.slots[slot].conn.as_mut() {
                        conn.close_after_drain = true;
                    }
                    return true;
                }
            }
        }
        // Park the partial tail (if any) on the connection; a fully
        // decoded input leaves the connection with no input heap at all.
        if let Some(conn) = self.slots[slot].conn.as_mut() {
            if offset < bytes.len() {
                if spill.is_empty() {
                    conn.inbuf.extend_from_slice(&bytes[offset..]);
                } else {
                    let mut buf = spill;
                    buf.drain(..offset);
                    conn.inbuf = buf;
                }
            }
        }
        true
    }

    /// Handle one decoded frame. Mirrors the dispatch table of the old
    /// threaded front exactly, plus admission control on estimates and
    /// feedback.
    fn dispatch(&mut self, slot: usize, message: Message) {
        // One span per inbound frame: decode already happened, so this
        // covers dispatch and the response encode.
        let _handle_span = SpanTimer::start(&metrics::SERVE_HANDLE_NS);
        let response = match message {
            Message::Hello { id, version: client_version, capabilities: client_caps } => {
                let (v, c) = negotiate(client_version, client_caps);
                if let Some(conn) = self.slots[slot].conn.as_mut() {
                    conn.version = v;
                    conn.caps = c;
                    conn.negotiated = true;
                }
                Message::HelloAck { id, version: v, capabilities: c }
            }
            Message::EstimateRequest { id, query } => {
                metrics::SERVE_REQUESTS.inc();
                let started = lc_obs::enabled().then(Instant::now);
                if self.over_budget() {
                    self.shed(slot, id, started);
                    return;
                }
                match self.service.probe_cache(&query) {
                    CacheProbe::Hit(est) => {
                        if let Some(started) = started {
                            metrics::SERVE_ESTIMATE_NS.record_duration(started.elapsed());
                        }
                        self.estimate_reply(
                            slot,
                            id,
                            est.cardinality,
                            est.model_version,
                            est.micro_batch,
                            true,
                            est.tier,
                            est.log_std,
                        )
                    }
                    CacheProbe::Miss { query_key } => {
                        self.admit(slot, id, query_key, started, &query, None);
                        return;
                    }
                }
            }
            Message::Feedback { id, query, actual_card } => {
                if self.conn_caps(slot) & CAP_FEEDBACK == 0 {
                    error_message(id, "feedback capability not negotiated".into())
                } else if self.over_budget() {
                    self.shed(slot, id, None);
                    return;
                } else {
                    match self.service.probe_cache(&query) {
                        CacheProbe::Hit(est) => {
                            let _span = SpanTimer::start(&metrics::SERVE_FEEDBACK_NS);
                            self.service.record_feedback(
                                &query,
                                est.cardinality,
                                est.tier,
                                actual_card,
                            );
                            Message::FeedbackAck { id, model_version: est.model_version }
                        }
                        CacheProbe::Miss { query_key } => {
                            self.admit(slot, id, query_key, None, &query, Some(actual_card));
                            return;
                        }
                    }
                }
            }
            Message::StatsRequest { id } => {
                if self.conn_caps(slot) & CAP_STATS == 0 {
                    error_message(id, "stats capability not negotiated".into())
                } else {
                    let drift = self.service.drift();
                    Message::Stats {
                        id,
                        model_version: self.service.registry().active_version(),
                        retrains: drift.retrains(),
                        feedback_count: drift.feedback_count(),
                        templates: drift.template_stats(),
                    }
                }
            }
            Message::DriftStatusRequest { id } => {
                if self.conn_caps(slot) & CAP_DRIFT == 0 {
                    error_message(id, "drift capability not negotiated".into())
                } else {
                    Message::DriftStatus {
                        id,
                        retrain_in_flight: self.service.retrain_in_flight(),
                        templates: self.service.drift().template_drift(),
                    }
                }
            }
            Message::MetricsRequest { id } => {
                if self.conn_caps(slot) & CAP_METRICS == 0 {
                    error_message(id, "metrics capability not negotiated".into())
                } else {
                    metrics::SERVE_METRICS_REQUESTS.inc();
                    metrics_snapshot(&self.service, id)
                }
            }
            Message::Ping { id } => Message::Pong { id },
            other => error_message(0, format!("unexpected client frame: {other:?}")),
        };
        self.respond(slot, response);
    }

    fn conn_caps(&self, slot: usize) -> u8 {
        self.slots[slot].conn.as_ref().map_or(0, |c| c.caps)
    }

    /// The estimate reply for `slot`: a connection that *negotiated*
    /// [`CAP_TIER`] gets the v2 [`Message::EstimateDetail`] frame with
    /// tier attribution; everyone else (v1, hello-less, or opted out)
    /// gets the classic [`Message::EstimateResponse`], byte-identical to
    /// what pre-tiering servers sent.
    #[allow(clippy::too_many_arguments)]
    fn estimate_reply(
        &self,
        slot: usize,
        id: u64,
        estimate: f64,
        model_version: u32,
        micro_batch: u32,
        cache_hit: bool,
        tier: u8,
        log_std: f64,
    ) -> Message {
        let detail =
            self.slots[slot].conn.as_ref().is_some_and(|c| c.negotiated && c.caps & CAP_TIER != 0);
        if detail {
            Message::EstimateDetail {
                id,
                estimate,
                model_version,
                micro_batch,
                cache_hit,
                tier,
                log_std,
            }
        } else {
            Message::EstimateResponse { id, estimate, model_version, micro_batch, cache_hit }
        }
    }

    fn over_budget(&self) -> bool {
        self.front.inflight_budget > 0 && self.pending.len() >= self.front.inflight_budget
    }

    /// Refuse one request under overload. Clients that explicitly
    /// negotiated [`CAP_RETRY`] get the typed Busy frame; everyone else
    /// (v1, hello-less, or opted out) gets a plain error they can
    /// already decode.
    fn shed(&mut self, slot: usize, id: u64, started: Option<Instant>) {
        self.obs.shed.inc();
        if let Some(started) = started {
            // Keep the estimate-span count == request count invariant:
            // a shed request was answered too, just not by the model.
            metrics::SERVE_ESTIMATE_NS.record_duration(started.elapsed());
        }
        let retry =
            self.slots[slot].conn.as_ref().is_some_and(|c| c.negotiated && c.caps & CAP_RETRY != 0);
        let response = if retry {
            Message::Busy { id, retry_after_ms: self.front.retry_after_ms }
        } else {
            error_message(id, "server busy".into())
        };
        self.respond(slot, response);
    }

    /// Enqueue an admitted request into the shard's batcher.
    fn admit(
        &mut self,
        slot: usize,
        id: u64,
        query_key: Option<Vec<u8>>,
        started: Option<Instant>,
        query: &Query,
        feedback_actual: Option<u64>,
    ) {
        let annotated = self.service.annotate(query);
        let rx = self.batcher.submit(annotated);
        let generation = self.slots[slot].generation;
        self.pending.push(PendingReq {
            slot,
            generation,
            id,
            query_key,
            rx,
            started,
            feedback: feedback_actual.map(|actual| (query.clone(), actual)),
        });
        self.obs.inflight.set(self.pending.len() as u64);
    }

    /// Deliver every batched result to its connection. After the flush
    /// loop all pending receivers have answers, so this empties the
    /// queue except when the batcher shut down mid-flight.
    fn resolve_pending(&mut self) {
        let mut i = 0;
        while i < self.pending.len() {
            match self.pending[i].rx.try_recv() {
                Ok(batched) => {
                    let req = self.pending.swap_remove(i);
                    self.finish(req, Some(batched));
                }
                Err(TryRecvError::Disconnected) => {
                    let req = self.pending.swap_remove(i);
                    self.finish(req, None);
                }
                Err(TryRecvError::Empty) => i += 1,
            }
        }
        self.obs.inflight.set(self.pending.len() as u64);
    }

    fn finish(&mut self, req: PendingReq, batched: Option<BatchedEstimate>) {
        if req.slot >= self.slots.len()
            || self.slots[req.slot].generation != req.generation
            || self.slots[req.slot].conn.is_none()
        {
            return; // peer disconnected while its batch ran
        }
        let response = match batched {
            Some(batched) => {
                if let Some(key) = req.query_key {
                    self.service.cache_insert(
                        key,
                        batched.model_version,
                        CachedEstimate {
                            cardinality: batched.cardinality,
                            tier: batched.tier,
                            log_std: batched.log_std,
                        },
                    );
                }
                match req.feedback {
                    Some((query, actual_card)) => {
                        let _span = SpanTimer::start(&metrics::SERVE_FEEDBACK_NS);
                        self.service.record_feedback(
                            &query,
                            batched.cardinality,
                            batched.tier,
                            actual_card,
                        );
                        Message::FeedbackAck { id: req.id, model_version: batched.model_version }
                    }
                    None => {
                        if let Some(started) = req.started {
                            metrics::SERVE_ESTIMATE_NS.record_duration(started.elapsed());
                        }
                        self.estimate_reply(
                            req.slot,
                            req.id,
                            batched.cardinality,
                            batched.model_version,
                            batched.micro_batch,
                            false,
                            batched.tier,
                            batched.log_std,
                        )
                    }
                }
            }
            None => error_message(req.id, ServeError::Shutdown.to_string()),
        };
        self.respond(req.slot, response);
    }

    /// Encode a response into the connection's write backlog and mark
    /// the slot for the end-of-pass write sweep.
    fn respond(&mut self, slot: usize, response: Message) {
        if matches!(response, Message::Error { .. }) {
            metrics::SERVE_ERRORS.inc();
        }
        self.scratch.clear();
        response.encode(&mut self.scratch);
        let conn = match self.slots[slot].conn.as_mut() {
            Some(conn) => conn,
            None => return,
        };
        conn.outbuf.extend_from_slice(&self.scratch);
        if !conn.dirty {
            conn.dirty = true;
            self.dirty.push(slot);
        }
    }

    /// Write sweep: push each dirty connection's backlog into its
    /// socket; write interest stays armed only where the socket pushed
    /// back.
    fn flush_dirty(&mut self) {
        let dirty = std::mem::take(&mut self.dirty);
        for slot in dirty {
            if let Some(conn) = self.slots[slot].conn.as_mut() {
                conn.dirty = false;
            }
            self.write_some(slot);
        }
    }

    /// Write as much of the backlog as the socket accepts. On full
    /// drain, de-arm write interest and honor a pending close; on
    /// WouldBlock, arm write interest so the poller finishes the job.
    fn write_some(&mut self, slot: usize) {
        let outcome = {
            let conn = match self.slots[slot].conn.as_mut() {
                Some(conn) => conn,
                None => return,
            };
            loop {
                if !conn.has_backlog() {
                    break IoOutcome::Open;
                }
                match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
                    Ok(0) => break IoOutcome::Closed,
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break IoOutcome::Blocked,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break IoOutcome::Closed,
                }
            }
        };
        let token = TOKEN_BASE + slot as u64;
        match outcome {
            IoOutcome::Closed => self.close(slot),
            IoOutcome::Blocked => {
                let conn = self.slots[slot].conn.as_mut().expect("blocked conn is live");
                if !conn.wants_write {
                    conn.wants_write = true;
                    let _ = self.poller.modify(
                        raw_fd(&conn.stream),
                        token,
                        lc_poll::READ | lc_poll::WRITE,
                    );
                }
            }
            IoOutcome::Open => {
                let close = {
                    let conn = self.slots[slot].conn.as_mut().expect("drained conn is live");
                    conn.out_pos = 0;
                    conn.outbuf = Vec::new();
                    if !conn.close_after_drain && conn.wants_write {
                        conn.wants_write = false;
                        let _ = self.poller.modify(raw_fd(&conn.stream), token, lc_poll::READ);
                    }
                    conn.close_after_drain
                };
                if close {
                    self.close(slot);
                }
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.slots[slot].conn.take() {
            let _ = self.poller.delete(raw_fd(&conn.stream));
            drop(conn);
            self.slots[slot].generation += 1;
            self.free.push(slot);
            self.open_connections.fetch_sub(1, Ordering::Relaxed);
            self.obs.connections.set(self.live_connections() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::config::ServeConfig;
    use crate::registry::ModelRegistry;
    use crate::wire::{read_message, write_message, CAP_FEEDBACK, PROTOCOL_V1};
    use lc_core::{train, TrainConfig};
    use lc_engine::SampleSet;
    use lc_imdb::{generate, ImdbConfig};
    use lc_query::workloads;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::io::{BufReader, BufWriter};
    use std::time::Duration;

    fn tiny_service_with(
        config: ServeConfig,
    ) -> (Arc<EstimationService>, Vec<lc_query::LabeledQuery>) {
        let db = generate(&ImdbConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(13);
        let samples = SampleSet::draw(&db, 24, &mut rng);
        let data = workloads::synthetic(&db, &samples, 120, 2, 91).queries;
        let cfg = TrainConfig { epochs: 2, hidden: 16, ..TrainConfig::default() };
        let est = train(&db, 24, &data, cfg).estimator;
        let registry = Arc::new(ModelRegistry::new(est));
        (Arc::new(EstimationService::new(db, samples, registry, config)), data)
    }

    fn tiny_service() -> (Arc<EstimationService>, Vec<lc_query::LabeledQuery>) {
        tiny_service_with(ServeConfig::default())
    }

    /// A service whose registry serves a full three-tier pipeline:
    /// MSCN primary, GBM middle tier, Postgres-style fallback.
    fn tiered_service(max_log_std: f64) -> (Arc<EstimationService>, Vec<lc_query::LabeledQuery>) {
        use crate::tier::TieredEstimator;
        use lc_baselines::{GbmConfig, GbmEstimator, OwnedPostgresEstimator};

        let db = generate(&ImdbConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(13);
        let samples = SampleSet::draw(&db, 24, &mut rng);
        let data = workloads::synthetic(&db, &samples, 120, 2, 91).queries;
        let cfg = TrainConfig { epochs: 2, hidden: 16, ..TrainConfig::default() };
        let est = train(&db, 24, &data, cfg).estimator;
        let gbm = Arc::new(GbmEstimator::train(&db, &data, GbmConfig::default()));
        let fallback = Arc::new(OwnedPostgresEstimator::new(Arc::new(db.clone())));
        let registry = Arc::new(ModelRegistry::with_pipeline(
            est,
            Box::new(move |base| {
                Arc::new(
                    TieredEstimator::new(Arc::new(base.clone()), max_log_std)
                        .with_gbm(Arc::clone(&gbm) as _)
                        .with_fallback(Arc::clone(&fallback) as _),
                )
            }),
        ));
        let service = EstimationService::new(db, samples, registry, ServeConfig::default());
        (Arc::new(service), data)
    }

    /// A client that negotiates CAP_TIER gets the v2 EstimateDetail
    /// frame — with a valid tier id and the cache-hit flag tracking
    /// repeats — instead of the classic EstimateResponse.
    #[test]
    fn cap_tier_clients_receive_estimate_detail_frames() {
        let (service, data) = tiered_service(0.75);
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        write_message(
            &mut writer,
            &Message::Hello { id: 0, version: PROTOCOL_VERSION, capabilities: CAPABILITIES },
        )
        .unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
            Some(Message::HelloAck { capabilities, .. }) => {
                assert_ne!(capabilities & CAP_TIER, 0, "server must offer CAP_TIER");
            }
            other => panic!("expected HelloAck, got {other:?}"),
        }

        // Same query twice: a fresh inference, then a cache hit — both
        // must arrive as detail frames carrying the same attribution.
        let mut first_tier = 0u8;
        for expect_hit in [false, true] {
            write_message(
                &mut writer,
                &Message::EstimateRequest { id: 7, query: data[0].query.clone() },
            )
            .unwrap();
            writer.flush().unwrap();
            match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
                Some(Message::EstimateDetail {
                    id, estimate, cache_hit, tier, log_std, ..
                }) => {
                    assert_eq!(id, 7);
                    assert!(estimate >= 1.0);
                    assert_eq!(cache_hit, expect_hit);
                    assert!(tier <= 2, "unknown tier id {tier}");
                    assert!(log_std.is_finite());
                    if expect_hit {
                        assert_eq!(tier, first_tier, "cache hit changed the attribution");
                    } else {
                        first_tier = tier;
                    }
                }
                other => panic!("CAP_TIER client got {other:?}"),
            }
        }

        // Feedback on a tiered connection still acks normally.
        write_message(
            &mut writer,
            &Message::Feedback { id: 8, query: data[1].query.clone(), actual_card: 10 },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::FeedbackAck { id: 8, .. })
        ));

        handle.shutdown();
        service.shutdown();
    }

    /// A v1 client (no hello, decodes strictly at v1) served by a fully
    /// tiered server must still receive plain EstimateResponse frames it
    /// can decode — tiering may never leak onto un-negotiated
    /// connections.
    #[test]
    fn v1_client_against_tiered_server_stays_compatible() {
        // A strict threshold so routing genuinely engages.
        let (service, data) = tiered_service(0.05);
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        for (i, l) in data.iter().take(6).enumerate() {
            write_message(
                &mut writer,
                &Message::EstimateRequest { id: i as u64, query: l.query.clone() },
            )
            .unwrap();
            writer.flush().unwrap();
            match read_message(&mut reader, PROTOCOL_V1).unwrap() {
                Some(Message::EstimateResponse { id, estimate, .. }) => {
                    assert_eq!(id, i as u64);
                    assert!(estimate >= 1.0);
                }
                other => panic!("v1 client against tiered server got {other:?}"),
            }
        }

        handle.shutdown();
        service.shutdown();
    }

    #[test]
    fn serves_requests_pings_and_rejects_garbage() {
        let (service, data) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();

        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // Ping / pong.
        write_message(&mut writer, &Message::Ping { id: 5 }).unwrap();
        writer.flush().unwrap();
        assert_eq!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::Pong { id: 5 })
        );

        // A real estimate round-trip, twice (second hits the cache).
        for expect_hit in [false, true] {
            write_message(
                &mut writer,
                &Message::EstimateRequest { id: 77, query: data[0].query.clone() },
            )
            .unwrap();
            writer.flush().unwrap();
            match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
                Some(Message::EstimateResponse { id, estimate, cache_hit, .. }) => {
                    assert_eq!(id, 77);
                    assert!(estimate >= 1.0);
                    assert_eq!(cache_hit, expect_hit);
                }
                other => panic!("unexpected reply: {other:?}"),
            }
        }

        // Garbage: declared length 16, bodies of zeros → decode error,
        // server answers with an Error frame and closes the connection.
        let garbage = TcpStream::connect(addr).expect("connect");
        let mut greader = BufReader::new(garbage.try_clone().unwrap());
        let mut gwriter = BufWriter::new(garbage);
        gwriter.write_all(&16u32.to_le_bytes()).unwrap();
        gwriter.write_all(&[0u8; 16]).unwrap();
        gwriter.flush().unwrap();
        match read_message(&mut greader, PROTOCOL_VERSION).unwrap() {
            Some(Message::Error { id: 0, message }) => {
                assert!(message.contains("wire protocol error"), "got: {message}");
            }
            other => panic!("expected Error frame, got {other:?}"),
        }
        assert_eq!(
            read_message(&mut greader, PROTOCOL_VERSION).unwrap(),
            None,
            "server closed after error"
        );

        handle.shutdown();
        service.shutdown();
    }

    /// An "old" client — speaks v1, never sends a hello, only kinds 1–5 —
    /// must keep working against the v2 server, byte for byte.
    #[test]
    fn v1_client_without_hello_is_served_unchanged() {
        let (service, data) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // The v1 exchange: ping, then an estimate — decoded by the
        // client strictly at v1, as an old binary would.
        write_message(&mut writer, &Message::Ping { id: 1 }).unwrap();
        writer.flush().unwrap();
        assert_eq!(read_message(&mut reader, PROTOCOL_V1).unwrap(), Some(Message::Pong { id: 1 }));
        write_message(
            &mut writer,
            &Message::EstimateRequest { id: 2, query: data[0].query.clone() },
        )
        .unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_V1).unwrap() {
            Some(Message::EstimateResponse { id: 2, estimate, .. }) => assert!(estimate >= 1.0),
            other => panic!("v1 client got {other:?}"),
        }

        handle.shutdown();
        service.shutdown();
    }

    /// Hello negotiation pins the connection to min(version) ∩ caps, and
    /// the server enforces both: v2 kinds above a v1-negotiated
    /// connection fail with the *negotiated* version in the error, and
    /// un-negotiated capabilities are refused.
    #[test]
    fn negotiation_gates_version_and_capabilities() {
        let (service, data) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");

        // Client negotiates v2 but only the stats capability: feedback
        // frames must be refused even though the server implements them.
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_message(
            &mut writer,
            &Message::Hello { id: 1, version: PROTOCOL_VERSION, capabilities: CAP_STATS },
        )
        .unwrap();
        writer.flush().unwrap();
        assert_eq!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::HelloAck { id: 1, version: PROTOCOL_VERSION, capabilities: CAP_STATS })
        );
        write_message(
            &mut writer,
            &Message::Feedback { id: 2, query: data[0].query.clone(), actual_card: 10 },
        )
        .unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
            Some(Message::Error { id: 2, message }) => {
                assert!(message.contains("capability"), "got: {message}");
            }
            other => panic!("expected capability refusal, got {other:?}"),
        }

        // A (misbehaving) client that negotiates down to v1 and then
        // sends a v2 kind gets a version-gate error naming v1.
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_message(
            &mut writer,
            &Message::Hello { id: 3, version: PROTOCOL_V1, capabilities: CAP_FEEDBACK },
        )
        .unwrap();
        writer.flush().unwrap();
        assert_eq!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::HelloAck { id: 3, version: PROTOCOL_V1, capabilities: CAP_FEEDBACK })
        );
        write_message(&mut writer, &Message::StatsRequest { id: 4 }).unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
            Some(Message::Error { id: 0, message }) => {
                assert!(message.contains("(v1)"), "error must name negotiated v1: {message}");
            }
            other => panic!("expected version-gate error, got {other:?}"),
        }

        handle.shutdown();
        service.shutdown();
    }

    /// The feedback → drift → retrain loop over the real TCP path.
    #[test]
    fn feedback_and_stats_over_the_wire() {
        let (service, data) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        write_message(
            &mut writer,
            &Message::Hello { id: 0, version: PROTOCOL_VERSION, capabilities: CAPABILITIES },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::HelloAck { version: PROTOCOL_VERSION, .. })
        ));

        for (i, l) in data.iter().take(8).enumerate() {
            write_message(
                &mut writer,
                &Message::Feedback {
                    id: i as u64,
                    query: l.query.clone(),
                    actual_card: l.cardinality.max(1),
                },
            )
            .unwrap();
            writer.flush().unwrap();
            match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
                Some(Message::FeedbackAck { id, model_version }) => {
                    assert_eq!(id, i as u64);
                    assert_eq!(model_version, 1);
                }
                other => panic!("expected FeedbackAck, got {other:?}"),
            }
        }

        write_message(&mut writer, &Message::StatsRequest { id: 99 }).unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
            Some(Message::Stats { id: 99, model_version, retrains, feedback_count, templates }) => {
                assert_eq!(model_version, 1);
                assert_eq!(retrains, 0);
                assert_eq!(feedback_count, 8);
                assert!(!templates.is_empty());
                assert!(templates.iter().all(|t| t.mean_qerror >= 1.0));
            }
            other => panic!("expected Stats, got {other:?}"),
        }

        write_message(&mut writer, &Message::DriftStatusRequest { id: 100 }).unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
            Some(Message::DriftStatus { id: 100, retrain_in_flight, templates }) => {
                assert!(!retrain_in_flight);
                assert!(templates.iter().all(|t| !t.tripped), "8 accurate obs must not trip");
            }
            other => panic!("expected DriftStatus, got {other:?}"),
        }

        handle.shutdown();
        service.shutdown();
    }

    /// Regression for the old accept-loop race: `shutdown()` used to
    /// poke the blocking accept loop with a throwaway connection and
    /// left connection threads lingering on idle peers. The reactor
    /// front must stop promptly with idle connections parked and zero
    /// inbound traffic.
    #[test]
    fn shutdown_returns_promptly_with_idle_connections() {
        let (service, _) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();
        // Park idle connections on the server; never send a byte.
        let idle: Vec<TcpStream> =
            (0..8).map(|_| TcpStream::connect(addr).expect("connect")).collect();
        // Give the reactors a moment to accept them all.
        std::thread::sleep(Duration::from_millis(100));
        let started = Instant::now();
        handle.shutdown();
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "shutdown took {elapsed:?} with idle connections parked"
        );
        drop(idle);
        service.shutdown();
    }

    /// Admission control: a pipelined burst beyond the per-shard
    /// in-flight budget is shed — Busy frames for CAP_RETRY clients —
    /// while admitted requests are answered normally, with zero hard
    /// errors and the connection still healthy afterwards.
    #[test]
    fn overload_sheds_with_busy_frames_and_keeps_the_connection() {
        const BUDGET: usize = 4;
        const BURST: usize = 12;
        let (service, data) = tiny_service_with(ServeConfig {
            front: FrontConfig { shards: 1, inflight_budget: BUDGET, ..FrontConfig::default() },
            // Cache off so every admitted request must go through the
            // batcher and the budget is exercised deterministically.
            cache: CacheConfig { capacity: 0, ..CacheConfig::default() },
            ..ServeConfig::default()
        });
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        write_message(
            &mut writer,
            &Message::Hello { id: 0, version: PROTOCOL_VERSION, capabilities: CAPABILITIES },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::HelloAck { .. })
        ));

        // Pipeline the whole burst in one write. The shard usually
        // decodes it in a single readiness pass (admitting exactly
        // BUDGET), but TCP may split the burst across passes — so the
        // assertions are: nothing lost, no hard errors, and at least
        // one shed with the configured retry hint.
        for id in 0..BURST as u64 {
            write_message(
                &mut writer,
                &Message::EstimateRequest { id, query: data[id as usize].query.clone() },
            )
            .unwrap();
        }
        writer.flush().unwrap();
        let (mut answered, mut shed) = (0usize, 0usize);
        for _ in 0..BURST {
            // This connection negotiated CAP_TIER, so admitted requests
            // come back as detail frames.
            match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
                Some(Message::EstimateDetail { estimate, .. }) => {
                    assert!(estimate >= 1.0);
                    answered += 1;
                }
                Some(Message::Busy { retry_after_ms, .. }) => {
                    assert_eq!(retry_after_ms, FrontConfig::default().retry_after_ms);
                    shed += 1;
                }
                other => panic!("unexpected reply under overload: {other:?}"),
            }
        }
        assert_eq!(answered + shed, BURST, "every request must be answered or shed");
        assert!(answered >= BUDGET, "the budget's worth must be admitted");
        assert!(shed >= 1, "a {BURST}-deep burst over budget {BUDGET} must shed");

        // The connection stays healthy: the next request is admitted.
        write_message(
            &mut writer,
            &Message::EstimateRequest { id: 99, query: data[0].query.clone() },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::EstimateDetail { id: 99, .. })
        ));

        // A v1 client (no hello) shed over budget gets a plain Error it
        // can decode, never a v2 Busy frame.
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut v1_reader = BufReader::new(stream.try_clone().unwrap());
        let mut v1_writer = BufWriter::new(stream);
        for id in 0..BURST as u64 {
            write_message(
                &mut v1_writer,
                &Message::EstimateRequest { id, query: data[id as usize].query.clone() },
            )
            .unwrap();
        }
        v1_writer.flush().unwrap();
        let (mut v1_answered, mut v1_busy_errors) = (0usize, 0usize);
        for _ in 0..BURST {
            match read_message(&mut v1_reader, PROTOCOL_V1).unwrap() {
                Some(Message::EstimateResponse { .. }) => v1_answered += 1,
                Some(Message::Error { message, .. }) => {
                    assert!(message.contains("busy"), "got: {message}");
                    v1_busy_errors += 1;
                }
                other => panic!("v1 overload reply: {other:?}"),
            }
        }
        assert_eq!(v1_answered + v1_busy_errors, BURST);
        assert!(v1_busy_errors >= 1, "v1 burst over budget must shed with Error frames");

        handle.shutdown();
        service.shutdown();
    }

    /// Frames split at arbitrary byte offsets must decode identically to
    /// whole-frame writes — the incremental decoder cannot depend on TCP
    /// segment boundaries.
    #[test]
    fn split_writes_at_every_offset_decode_correctly() {
        let (service, data) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut raw = stream;

        let mut frame = Vec::new();
        Message::EstimateRequest { id: 7, query: data[1].query.clone() }.encode(&mut frame);
        // Dribble the frame one byte at a time: every prefix length is a
        // split offset the decoder must park on without progress or
        // error.
        for &byte in &frame {
            raw.write_all(&[byte]).unwrap();
            raw.flush().unwrap();
        }
        match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
            Some(Message::EstimateResponse { id: 7, estimate, .. }) => assert!(estimate >= 1.0),
            other => panic!("byte-dribbled frame got {other:?}"),
        }

        // Two frames fused into one write: both answered, in order.
        let mut fused = Vec::new();
        Message::Ping { id: 1 }.encode(&mut fused);
        Message::Ping { id: 2 }.encode(&mut fused);
        raw.write_all(&fused).unwrap();
        raw.flush().unwrap();
        assert_eq!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::Pong { id: 1 })
        );
        assert_eq!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::Pong { id: 2 })
        );

        handle.shutdown();
        service.shutdown();
    }

    /// The global connection cap refuses surplus connections at accept
    /// while the connections under the cap keep being served.
    #[test]
    fn connection_cap_refuses_surplus_connections() {
        let (service, data) = tiny_service_with(ServeConfig {
            front: FrontConfig { shards: 1, max_connections: 2, ..FrontConfig::default() },
            ..ServeConfig::default()
        });
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();

        let keep1 = TcpStream::connect(addr).expect("connect");
        let keep2 = TcpStream::connect(addr).expect("connect");
        // Let the reactor accept both before over-filling.
        std::thread::sleep(Duration::from_millis(100));
        // The surplus connection is accepted by the kernel and then
        // closed by the server: its first read reports EOF.
        let surplus = TcpStream::connect(addr).expect("connect");
        surplus.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut surplus_reader = BufReader::new(surplus);
        let mut byte = [0u8; 1];
        assert_eq!(
            surplus_reader.read(&mut byte).expect("surplus read"),
            0,
            "over-cap connection must be closed by the server"
        );

        // The admitted connections still serve.
        let mut reader = BufReader::new(keep1.try_clone().unwrap());
        let mut writer = BufWriter::new(keep1);
        write_message(
            &mut writer,
            &Message::EstimateRequest { id: 4, query: data[0].query.clone() },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::EstimateResponse { id: 4, .. })
        ));

        drop(keep2);
        handle.shutdown();
        service.shutdown();
    }
}
