//! The threaded TCP front of the estimation service.
//!
//! One accept loop, one thread per connection, one in-flight request per
//! connection (clients that want concurrency open several connections —
//! that is what the load generator does). Micro-batching happens *behind*
//! the connection threads, in the service's batcher, so concurrent
//! connections coalesce into shared forward passes without any
//! cross-connection coordination here.
//!
//! ## Protocol negotiation
//!
//! A v2 client opens with [`Message::Hello`]; the server answers
//! [`Message::HelloAck`] carrying the [`negotiate`]d version (min of the
//! two) and capability intersection, and from then on decodes the
//! connection at the negotiated version — so a frame above that version
//! earns a `KindAboveVersion` error stamped with the version the *client*
//! agreed to. A v1 client never sends a hello; the connection simply
//! stays in the pre-hello state, where the server decodes at its own
//! maximum version and v1 traffic (kinds 1–5) works unchanged. Old
//! clients against a new server is the compatibility case the versioned
//! redesign exists for.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use lc_obs::{metrics, MetricKind, SpanTimer};

use crate::service::EstimationService;
use crate::wire::{
    negotiate, read_message, write_message, HistogramMetric, Message, ScalarMetric, CAPABILITIES,
    CAP_DRIFT, CAP_FEEDBACK, CAP_METRICS, CAP_STATS, PROTOCOL_VERSION,
};

/// Cap on outgoing error messages, so an Error reply echoing
/// client-supplied content can never exceed [`crate::wire::MAX_FRAME_LEN`]
/// and become undecodable by a conforming client.
const MAX_ERROR_MESSAGE: usize = 512;

fn error_message(id: u64, mut message: String) -> Message {
    if message.len() > MAX_ERROR_MESSAGE {
        let mut cut = MAX_ERROR_MESSAGE;
        while !message.is_char_boundary(cut) {
            cut -= 1;
        }
        message.truncate(cut);
        message.push('…');
    }
    Message::Error { id, message }
}

/// Build a [`Message::MetricsSnapshot`] of the whole `lc_obs` catalog.
/// Gauges that mirror state owned elsewhere (active model version, cache
/// population, pool size) are refreshed here, at snapshot time, instead
/// of being maintained on hot paths that already have the state.
fn metrics_snapshot(service: &EstimationService, id: u64) -> Message {
    metrics::MODEL_VERSION.set(u64::from(service.registry().active_version()));
    metrics::CACHE_ENTRIES.set(service.cache_stats().entries as u64);
    metrics::POOL_WORKERS.set(lc_nn::WorkerPool::global().workers() as u64);
    let snap = lc_obs::snapshot();
    Message::MetricsSnapshot {
        id,
        uptime_ns: snap.uptime_ns,
        scalars: snap
            .scalars
            .iter()
            .map(|s| ScalarMetric { id: s.id, gauge: s.kind == MetricKind::Gauge, value: s.value })
            .collect(),
        histograms: snap
            .histograms
            .iter()
            .map(|h| HistogramMetric {
                id: h.id,
                sum: h.snapshot.sum,
                max: h.snapshot.max,
                buckets: h.snapshot.buckets,
            })
            .collect(),
    }
}

/// A running server: its bound address plus shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block the calling thread until the accept loop exits (i.e. until
    /// [`ServerHandle::shutdown`] is called from elsewhere or the process
    /// dies). This is what the `serve` binary parks on.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            handle.join().expect("accept loop panicked");
        }
    }

    /// Stop accepting connections and join the accept loop. Existing
    /// connections are quiesced cooperatively: each connection thread
    /// notices the stop flag after answering its current request (or
    /// when its client disconnects) and closes. Threads blocked waiting
    /// for a client's *next* request linger until that client sends one
    /// or hangs up — no in-flight work is ever aborted. The service
    /// itself (and its batcher) stays usable until dropped.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only re-checks `stop` when accept() returns, so
        // poke it with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            handle.join().expect("accept loop panicked");
        }
    }
}

/// Bind `addr` and serve `service` until the handle is shut down.
///
/// Connection threads are detached; each exits when its peer disconnects
/// or sends a malformed frame.
pub fn serve(
    service: Arc<EstimationService>,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    metrics::SERVE_CONNECTIONS.inc();
                    let service = Arc::clone(&service);
                    let stop = Arc::clone(&accept_stop);
                    std::thread::spawn(move || {
                        // A torn connection is the client's problem, not
                        // the server's; log-and-forget would go here.
                        let _ = handle_connection(&service, stream, &stop);
                    });
                }
                Err(_) => continue,
            }
        }
    });
    Ok(ServerHandle { addr: local, stop, accept_thread: Some(accept_thread) })
}

fn handle_connection(
    service: &EstimationService,
    stream: TcpStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    // Responses are single small frames; Nagle would add artificial
    // latency to every estimate.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // Pre-hello the connection decodes at the server's own maximum
    // version with every capability available — that is exactly what
    // keeps hello-less v1 clients working. A Hello narrows both to the
    // negotiated values for the rest of the connection.
    let mut version = PROTOCOL_VERSION;
    let mut caps = CAPABILITIES;
    loop {
        let message = match read_message(&mut reader, version) {
            Ok(Some(message)) => message,
            Ok(None) => return Ok(()), // clean disconnect
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed frame: report and drop the connection (the
                // stream position is unrecoverable). The embedded
                // WireError already names the negotiated version.
                metrics::SERVE_WIRE_ERRORS.inc();
                metrics::SERVE_ERRORS.inc();
                write_message(&mut writer, &error_message(0, e.to_string()))?;
                writer.flush()?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        // One span per inbound frame: decode already happened, so this
        // covers dispatch, the response encode, and the flush.
        let _handle_span = SpanTimer::start(&metrics::SERVE_HANDLE_NS);
        let response = match message {
            Message::Hello { id, version: client_version, capabilities: client_caps } => {
                let (v, c) = negotiate(client_version, client_caps);
                version = v;
                caps = c;
                Message::HelloAck { id, version: v, capabilities: c }
            }
            Message::EstimateRequest { id, query } => {
                metrics::SERVE_REQUESTS.inc();
                let _span = SpanTimer::start(&metrics::SERVE_ESTIMATE_NS);
                match service.estimate(&query) {
                    Ok(est) => Message::EstimateResponse {
                        id,
                        estimate: est.cardinality,
                        model_version: est.model_version,
                        micro_batch: est.micro_batch,
                        cache_hit: est.cache_hit,
                    },
                    Err(e) => error_message(id, e.to_string()),
                }
            }
            Message::Feedback { id, query, actual_card } => {
                if caps & CAP_FEEDBACK == 0 {
                    error_message(id, "feedback capability not negotiated".into())
                } else {
                    let _span = SpanTimer::start(&metrics::SERVE_FEEDBACK_NS);
                    match service.feedback(&query, actual_card) {
                        Ok(est) => Message::FeedbackAck { id, model_version: est.model_version },
                        Err(e) => error_message(id, e.to_string()),
                    }
                }
            }
            Message::StatsRequest { id } => {
                if caps & CAP_STATS == 0 {
                    error_message(id, "stats capability not negotiated".into())
                } else {
                    let drift = service.drift();
                    Message::Stats {
                        id,
                        model_version: service.registry().active_version(),
                        retrains: drift.retrains(),
                        feedback_count: drift.feedback_count(),
                        templates: drift.template_stats(),
                    }
                }
            }
            Message::DriftStatusRequest { id } => {
                if caps & CAP_DRIFT == 0 {
                    error_message(id, "drift capability not negotiated".into())
                } else {
                    Message::DriftStatus {
                        id,
                        retrain_in_flight: service.retrain_in_flight(),
                        templates: service.drift().template_drift(),
                    }
                }
            }
            Message::MetricsRequest { id } => {
                if caps & CAP_METRICS == 0 {
                    error_message(id, "metrics capability not negotiated".into())
                } else {
                    metrics::SERVE_METRICS_REQUESTS.inc();
                    metrics_snapshot(service, id)
                }
            }
            Message::Ping { id } => Message::Pong { id },
            other => error_message(0, format!("unexpected client frame: {other:?}")),
        };
        if matches!(response, Message::Error { .. }) {
            metrics::SERVE_ERRORS.inc();
        }
        write_message(&mut writer, &response)?;
        writer.flush()?;
        if stop.load(Ordering::SeqCst) {
            // Server is quiescing: answer the request in flight, then
            // close instead of waiting for the client's next frame.
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::registry::ModelRegistry;
    use crate::wire::{CAP_FEEDBACK, PROTOCOL_V1};
    use lc_core::{train, TrainConfig};
    use lc_engine::SampleSet;
    use lc_imdb::{generate, ImdbConfig};
    use lc_query::workloads;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_service() -> (Arc<EstimationService>, Vec<lc_query::LabeledQuery>) {
        let db = generate(&ImdbConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(13);
        let samples = SampleSet::draw(&db, 24, &mut rng);
        let data = workloads::synthetic(&db, &samples, 120, 2, 91).queries;
        let cfg = TrainConfig { epochs: 2, hidden: 16, ..TrainConfig::default() };
        let est = train(&db, 24, &data, cfg).estimator;
        let registry = Arc::new(ModelRegistry::new(est));
        (Arc::new(EstimationService::new(db, samples, registry, ServeConfig::default())), data)
    }

    #[test]
    fn serves_requests_pings_and_rejects_garbage() {
        let (service, data) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();

        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // Ping / pong.
        write_message(&mut writer, &Message::Ping { id: 5 }).unwrap();
        writer.flush().unwrap();
        assert_eq!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::Pong { id: 5 })
        );

        // A real estimate round-trip, twice (second hits the cache).
        for expect_hit in [false, true] {
            write_message(
                &mut writer,
                &Message::EstimateRequest { id: 77, query: data[0].query.clone() },
            )
            .unwrap();
            writer.flush().unwrap();
            match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
                Some(Message::EstimateResponse { id, estimate, cache_hit, .. }) => {
                    assert_eq!(id, 77);
                    assert!(estimate >= 1.0);
                    assert_eq!(cache_hit, expect_hit);
                }
                other => panic!("unexpected reply: {other:?}"),
            }
        }

        // Garbage: declared length 16, bodies of zeros → decode error,
        // server answers with an Error frame and closes the connection.
        let garbage = TcpStream::connect(addr).expect("connect");
        let mut greader = BufReader::new(garbage.try_clone().unwrap());
        let mut gwriter = BufWriter::new(garbage);
        gwriter.write_all(&16u32.to_le_bytes()).unwrap();
        gwriter.write_all(&[0u8; 16]).unwrap();
        gwriter.flush().unwrap();
        match read_message(&mut greader, PROTOCOL_VERSION).unwrap() {
            Some(Message::Error { id: 0, message }) => {
                assert!(message.contains("wire protocol error"), "got: {message}");
            }
            other => panic!("expected Error frame, got {other:?}"),
        }
        assert_eq!(
            read_message(&mut greader, PROTOCOL_VERSION).unwrap(),
            None,
            "server closed after error"
        );

        handle.shutdown();
        service.shutdown();
    }

    /// An "old" client — speaks v1, never sends a hello, only kinds 1–5 —
    /// must keep working against the v2 server, byte for byte.
    #[test]
    fn v1_client_without_hello_is_served_unchanged() {
        let (service, data) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // The v1 exchange: ping, then an estimate — decoded by the
        // client strictly at v1, as an old binary would.
        write_message(&mut writer, &Message::Ping { id: 1 }).unwrap();
        writer.flush().unwrap();
        assert_eq!(read_message(&mut reader, PROTOCOL_V1).unwrap(), Some(Message::Pong { id: 1 }));
        write_message(
            &mut writer,
            &Message::EstimateRequest { id: 2, query: data[0].query.clone() },
        )
        .unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_V1).unwrap() {
            Some(Message::EstimateResponse { id: 2, estimate, .. }) => assert!(estimate >= 1.0),
            other => panic!("v1 client got {other:?}"),
        }

        handle.shutdown();
        service.shutdown();
    }

    /// Hello negotiation pins the connection to min(version) ∩ caps, and
    /// the server enforces both: v2 kinds above a v1-negotiated
    /// connection fail with the *negotiated* version in the error, and
    /// un-negotiated capabilities are refused.
    #[test]
    fn negotiation_gates_version_and_capabilities() {
        let (service, data) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");

        // Client negotiates v2 but only the stats capability: feedback
        // frames must be refused even though the server implements them.
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_message(
            &mut writer,
            &Message::Hello { id: 1, version: PROTOCOL_VERSION, capabilities: CAP_STATS },
        )
        .unwrap();
        writer.flush().unwrap();
        assert_eq!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::HelloAck { id: 1, version: PROTOCOL_VERSION, capabilities: CAP_STATS })
        );
        write_message(
            &mut writer,
            &Message::Feedback { id: 2, query: data[0].query.clone(), actual_card: 10 },
        )
        .unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
            Some(Message::Error { id: 2, message }) => {
                assert!(message.contains("capability"), "got: {message}");
            }
            other => panic!("expected capability refusal, got {other:?}"),
        }

        // A (misbehaving) client that negotiates down to v1 and then
        // sends a v2 kind gets a version-gate error naming v1.
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_message(
            &mut writer,
            &Message::Hello { id: 3, version: PROTOCOL_V1, capabilities: CAP_FEEDBACK },
        )
        .unwrap();
        writer.flush().unwrap();
        assert_eq!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::HelloAck { id: 3, version: PROTOCOL_V1, capabilities: CAP_FEEDBACK })
        );
        write_message(&mut writer, &Message::StatsRequest { id: 4 }).unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
            Some(Message::Error { id: 0, message }) => {
                assert!(message.contains("(v1)"), "error must name negotiated v1: {message}");
            }
            other => panic!("expected version-gate error, got {other:?}"),
        }

        handle.shutdown();
        service.shutdown();
    }

    /// The feedback → drift → retrain loop over the real TCP path.
    #[test]
    fn feedback_and_stats_over_the_wire() {
        let (service, data) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        write_message(
            &mut writer,
            &Message::Hello { id: 0, version: PROTOCOL_VERSION, capabilities: CAPABILITIES },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_message(&mut reader, PROTOCOL_VERSION).unwrap(),
            Some(Message::HelloAck { version: PROTOCOL_VERSION, .. })
        ));

        for (i, l) in data.iter().take(8).enumerate() {
            write_message(
                &mut writer,
                &Message::Feedback {
                    id: i as u64,
                    query: l.query.clone(),
                    actual_card: l.cardinality.max(1),
                },
            )
            .unwrap();
            writer.flush().unwrap();
            match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
                Some(Message::FeedbackAck { id, model_version }) => {
                    assert_eq!(id, i as u64);
                    assert_eq!(model_version, 1);
                }
                other => panic!("expected FeedbackAck, got {other:?}"),
            }
        }

        write_message(&mut writer, &Message::StatsRequest { id: 99 }).unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
            Some(Message::Stats { id: 99, model_version, retrains, feedback_count, templates }) => {
                assert_eq!(model_version, 1);
                assert_eq!(retrains, 0);
                assert_eq!(feedback_count, 8);
                assert!(!templates.is_empty());
                assert!(templates.iter().all(|t| t.mean_qerror >= 1.0));
            }
            other => panic!("expected Stats, got {other:?}"),
        }

        write_message(&mut writer, &Message::DriftStatusRequest { id: 100 }).unwrap();
        writer.flush().unwrap();
        match read_message(&mut reader, PROTOCOL_VERSION).unwrap() {
            Some(Message::DriftStatus { id: 100, retrain_in_flight, templates }) => {
                assert!(!retrain_in_flight);
                assert!(templates.iter().all(|t| !t.tripped), "8 accurate obs must not trip");
            }
            other => panic!("expected DriftStatus, got {other:?}"),
        }

        handle.shutdown();
        service.shutdown();
    }
}
