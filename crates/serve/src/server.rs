//! The threaded TCP front of the estimation service.
//!
//! One accept loop, one thread per connection, one in-flight request per
//! connection (clients that want concurrency open several connections —
//! that is what the load generator does). Micro-batching happens *behind*
//! the connection threads, in the service's batcher, so concurrent
//! connections coalesce into shared forward passes without any
//! cross-connection coordination here.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::service::EstimationService;
use crate::wire::{read_frame, write_frame, Frame};

/// Cap on outgoing error-frame messages, so an Error reply echoing
/// client-supplied content can never exceed [`crate::wire::MAX_FRAME_LEN`]
/// and become undecodable by a conforming client.
const MAX_ERROR_MESSAGE: usize = 512;

fn error_frame(id: u64, mut message: String) -> Frame {
    if message.len() > MAX_ERROR_MESSAGE {
        let mut cut = MAX_ERROR_MESSAGE;
        while !message.is_char_boundary(cut) {
            cut -= 1;
        }
        message.truncate(cut);
        message.push('…');
    }
    Frame::Error { id, message }
}

/// A running server: its bound address plus shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block the calling thread until the accept loop exits (i.e. until
    /// [`ServerHandle::shutdown`] is called from elsewhere or the process
    /// dies). This is what the `serve` binary parks on.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            handle.join().expect("accept loop panicked");
        }
    }

    /// Stop accepting connections and join the accept loop. Existing
    /// connections are quiesced cooperatively: each connection thread
    /// notices the stop flag after answering its current request (or
    /// when its client disconnects) and closes. Threads blocked waiting
    /// for a client's *next* request linger until that client sends one
    /// or hangs up — no in-flight work is ever aborted. The service
    /// itself (and its batcher) stays usable until dropped.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only re-checks `stop` when accept() returns, so
        // poke it with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            handle.join().expect("accept loop panicked");
        }
    }
}

/// Bind `addr` and serve `service` until the handle is shut down.
///
/// Connection threads are detached; each exits when its peer disconnects
/// or sends a malformed frame.
pub fn serve(
    service: Arc<EstimationService>,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let service = Arc::clone(&service);
                    let stop = Arc::clone(&accept_stop);
                    std::thread::spawn(move || {
                        // A torn connection is the client's problem, not
                        // the server's; log-and-forget would go here.
                        let _ = handle_connection(&service, stream, &stop);
                    });
                }
                Err(_) => continue,
            }
        }
    });
    Ok(ServerHandle { addr: local, stop, accept_thread: Some(accept_thread) })
}

fn handle_connection(
    service: &EstimationService,
    stream: TcpStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    // Responses are single small frames; Nagle would add artificial
    // latency to every estimate.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()), // clean disconnect
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed frame: report and drop the connection (the
                // stream position is unrecoverable).
                write_frame(&mut writer, &error_frame(0, e.to_string()))?;
                writer.flush()?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let response = match frame {
            Frame::EstimateRequest { id, query } => match service.estimate(&query) {
                Ok(est) => Frame::EstimateResponse {
                    id,
                    estimate: est.cardinality,
                    model_version: est.model_version,
                    micro_batch: est.micro_batch,
                    cache_hit: est.cache_hit,
                },
                Err(e) => error_frame(id, e.to_string()),
            },
            Frame::Ping { id } => Frame::Pong { id },
            other => error_frame(0, format!("unexpected client frame: {other:?}")),
        };
        write_frame(&mut writer, &response)?;
        writer.flush()?;
        if stop.load(Ordering::SeqCst) {
            // Server is quiescing: answer the request in flight, then
            // close instead of waiting for the client's next frame.
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use crate::service::ServiceConfig;
    use lc_core::{train, TrainConfig};
    use lc_engine::SampleSet;
    use lc_imdb::{generate, ImdbConfig};
    use lc_query::workloads;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_service() -> (Arc<EstimationService>, Vec<lc_query::LabeledQuery>) {
        let db = generate(&ImdbConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(13);
        let samples = SampleSet::draw(&db, 24, &mut rng);
        let data = workloads::synthetic(&db, &samples, 120, 2, 91).queries;
        let cfg = TrainConfig { epochs: 2, hidden: 16, ..TrainConfig::default() };
        let est = train(&db, 24, &data, cfg).estimator;
        let registry = Arc::new(ModelRegistry::new(est));
        (Arc::new(EstimationService::new(db, samples, registry, ServiceConfig::default())), data)
    }

    #[test]
    fn serves_requests_pings_and_rejects_garbage() {
        let (service, data) = tiny_service();
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let addr = handle.local_addr();

        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // Ping / pong.
        write_frame(&mut writer, &Frame::Ping { id: 5 }).unwrap();
        writer.flush().unwrap();
        assert_eq!(read_frame(&mut reader).unwrap(), Some(Frame::Pong { id: 5 }));

        // A real estimate round-trip, twice (second hits the cache).
        for expect_hit in [false, true] {
            write_frame(
                &mut writer,
                &Frame::EstimateRequest { id: 77, query: data[0].query.clone() },
            )
            .unwrap();
            writer.flush().unwrap();
            match read_frame(&mut reader).unwrap() {
                Some(Frame::EstimateResponse { id, estimate, cache_hit, .. }) => {
                    assert_eq!(id, 77);
                    assert!(estimate >= 1.0);
                    assert_eq!(cache_hit, expect_hit);
                }
                other => panic!("unexpected reply: {other:?}"),
            }
        }

        // Garbage: declared length 16, bodies of zeros → decode error,
        // server answers with an Error frame and closes the connection.
        let garbage = TcpStream::connect(addr).expect("connect");
        let mut greader = BufReader::new(garbage.try_clone().unwrap());
        let mut gwriter = BufWriter::new(garbage);
        gwriter.write_all(&16u32.to_le_bytes()).unwrap();
        gwriter.write_all(&[0u8; 16]).unwrap();
        gwriter.flush().unwrap();
        match read_frame(&mut greader).unwrap() {
            Some(Frame::Error { id: 0, message }) => {
                assert!(message.contains("wire protocol error"), "got: {message}");
            }
            other => panic!("expected Error frame, got {other:?}"),
        }
        assert_eq!(read_frame(&mut greader).unwrap(), None, "server closed after error");

        handle.shutdown();
        service.shutdown();
    }
}
