//! The estimation service: registry → cache → batcher glued behind one
//! call, plus the self-healing feedback loop.
//!
//! [`EstimationService::estimate`] is the whole request path of the
//! server, in process form: compute the canonical cache key, probe the
//! sharded LRU, annotate the query against the materialized samples on a
//! miss (§3.4 runtime featurization — no query execution), enqueue into
//! the micro-batcher, and cache the result under the producing model's
//! version. [`EstimationService::submit`] exposes the non-blocking half
//! so callers holding many queries can enqueue them all before waiting —
//! that is what makes the coalesced path reachable from a single thread.
//!
//! [`EstimationService::feedback`] closes the maintenance loop the paper
//! leaves open (§5 "Updates"): each `(query, actual)` observation is
//! scored against the *current* model, recorded in the
//! [`DriftMonitor`]'s per-template rolling windows, and banked in the
//! retraining corpus. When a window trips, a background retrainer thread
//! runs [`train_incremental`] over the corpus (frozen featurizer, warm
//! weights — the worker pool parallelizes the steps) and
//! [`ModelRegistry::publish`]es the result mid-traffic: in-flight
//! micro-batches keep their snapshot, the version-keyed cache
//! invalidates for free, and the drift windows reset so stale
//! pre-retrain q-errors cannot immediately re-trip.
//!
//! Inference itself rides `lc_core`'s allocation-free compute core: the
//! batcher worker's scratch arena persists across batches, and large
//! coalesced batches go block-parallel inside `estimate_all` without
//! changing a single output bit (see `lc_nn`'s kernel determinism
//! notes), so the service can raise `max_batch` for throughput without
//! a correctness trade.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use lc_core::train_incremental;
use lc_engine::{Database, SampleSet};
use lc_obs::{metrics, RateLimitedLog, SpanTimer};
use lc_query::{annotate_query, Query};

use crate::batcher::{BatchStats, BatchedEstimate, BatcherConfig, MicroBatcher};
use crate::cache::{CacheStats, CachedEstimate, EstimateCache};
use crate::config::{FrontConfig, ServeConfig};
use crate::drift::{DriftDecision, DriftMonitor};
use crate::registry::ModelRegistry;
use crate::tier::{TIER_FALLBACK, TIER_GBM};

/// Error returned by [`EstimationService::estimate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service shut down before the request was answered.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shutdown => write!(f, "estimation service shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One served estimate plus its serving metadata.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Estimated cardinality in rows (≥ 1).
    pub cardinality: f64,
    /// Version of the model snapshot that produced (or originally
    /// produced, for cache hits) the estimate.
    pub model_version: u32,
    /// True if the answer came from the cache without inference.
    pub cache_hit: bool,
    /// Requests coalesced into the same forward pass (0 for cache hits).
    pub micro_batch: u32,
    /// Pipeline tier that produced (or originally produced, for cache
    /// hits) the estimate — 0 for monolithic estimators, see
    /// `crate::tier` for the routed ids.
    pub tier: u8,
    /// The primary model's log-std trust signal for this query.
    pub log_std: f64,
}

/// A long-lived, thread-safe estimation service. Share it across
/// connection threads behind an `Arc`.
pub struct EstimationService {
    db: Database,
    samples: SampleSet,
    registry: Arc<ModelRegistry>,
    cache: EstimateCache,
    batcher: MicroBatcher,
    drift: Arc<DriftMonitor>,
    /// Sizing/admission policy of the sharded TCP front, carried here so
    /// `serve(service, addr)` needs no extra argument.
    front: FrontConfig,
    /// Guard ensuring at most one retrain runs at a time; reset by the
    /// retrainer thread itself when it finishes.
    retrain_in_flight: Arc<AtomicBool>,
    /// The latest retrainer thread, joined on the next schedule or at
    /// shutdown.
    retrainer: Mutex<Option<JoinHandle<()>>>,
}

/// An estimate in flight: either answered from the cache at submit time
/// or waiting on the micro-batcher. Produced by
/// [`EstimationService::submit`]; redeem it with
/// [`PendingEstimate::wait`].
pub struct PendingEstimate<'a> {
    service: &'a EstimationService,
    state: PendingState,
}

enum PendingState {
    Ready(Estimate),
    Waiting {
        /// Canonical query bytes — the version suffix is appended when
        /// the batch result (and thus the producing version) is known.
        query_key: Vec<u8>,
        rx: Receiver<BatchedEstimate>,
    },
}

/// Outcome of [`EstimationService::probe_cache`] — the non-blocking
/// cache probe the sharded TCP front runs before enqueueing into its
/// per-shard batcher.
pub(crate) enum CacheProbe {
    /// Answered from the cache; no inference needed.
    Hit(Estimate),
    /// Not cached: `query_key` is the bare canonical encoding to pass to
    /// [`EstimationService::cache_insert`] once the producing version is
    /// known (`None` when the cache is disabled).
    Miss {
        /// Canonical query bytes without the version suffix.
        query_key: Option<Vec<u8>>,
    },
}

impl PendingEstimate<'_> {
    /// True if the answer is already available (cache hit).
    pub fn is_ready(&self) -> bool {
        matches!(self.state, PendingState::Ready(_))
    }

    /// Block until the estimate is available, inserting batch-produced
    /// results into the cache.
    pub fn wait(self) -> Result<Estimate, ServeError> {
        match self.state {
            PendingState::Ready(estimate) => Ok(estimate),
            PendingState::Waiting { mut query_key, rx } => {
                let batched = rx.recv().map_err(|_| ServeError::Shutdown)?;
                if self.service.cache.enabled() {
                    query_key.extend_from_slice(&batched.model_version.to_le_bytes());
                    self.service.cache.insert(
                        query_key,
                        CachedEstimate {
                            cardinality: batched.cardinality,
                            tier: batched.tier,
                            log_std: batched.log_std,
                        },
                    );
                }
                Ok(Estimate {
                    cardinality: batched.cardinality,
                    model_version: batched.model_version,
                    cache_hit: false,
                    micro_batch: batched.micro_batch,
                    tier: batched.tier,
                    log_std: batched.log_std,
                })
            }
        }
    }
}

impl EstimationService {
    /// Build a service over a database snapshot and its materialized
    /// samples. `samples` must be the sample set whose size the
    /// registry's models were trained with (their featurizers bake the
    /// bitmap width in).
    pub fn new(
        db: Database,
        samples: SampleSet,
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
    ) -> Self {
        EstimationService {
            db,
            samples,
            cache: EstimateCache::new(config.cache),
            batcher: MicroBatcher::new(Arc::clone(&registry), config.batcher),
            registry,
            drift: Arc::new(DriftMonitor::new(config.drift)),
            front: config.front,
            retrain_in_flight: Arc::new(AtomicBool::new(false)),
            retrainer: Mutex::new(None),
        }
    }

    /// Non-blocking request entry: probe the cache, and on a miss
    /// annotate + enqueue into the micro-batcher. Submitting many
    /// queries before waiting on any lets one thread fill a whole
    /// micro-batch.
    pub fn submit(&self, query: &Query) -> PendingEstimate<'_> {
        // When the cache is disabled, skip key construction entirely —
        // the hot path then carries zero cache overhead.
        let mut query_key = Vec::new();
        if self.cache.enabled() {
            // Probe with the version suffix appended in place, then
            // strip it again for the Waiting state (wait() re-appends
            // the *producing* version) — one allocation, no clone.
            query_key = query.to_canonical_bytes();
            let version = self.registry.active_version();
            query_key.extend_from_slice(&version.to_le_bytes());
            if let Some(cached) = self.cache.get(&query_key) {
                metrics::CACHE_HITS.inc();
                return PendingEstimate {
                    service: self,
                    state: PendingState::Ready(Estimate {
                        cardinality: cached.cardinality,
                        model_version: version,
                        cache_hit: true,
                        micro_batch: 0,
                        tier: cached.tier,
                        log_std: cached.log_std,
                    }),
                };
            }
            query_key.truncate(query_key.len() - 4);
            metrics::CACHE_MISSES.inc();
        }
        let annotated = annotate_query(&self.db, &self.samples, query.clone());
        let rx = self.batcher.submit(annotated);
        PendingEstimate { service: self, state: PendingState::Waiting { query_key, rx } }
    }

    /// Estimate one query, blocking until the answer is available.
    pub fn estimate(&self, query: &Query) -> Result<Estimate, ServeError> {
        self.submit(query).wait()
    }

    /// Record execution feedback: the client ran `query` and observed
    /// `actual_card` rows. The observation is scored against the
    /// *current* model (so recovery after a retrain is visible in the
    /// rolling windows), recorded in the drift monitor, and — when its
    /// true cardinality is trainable (≥ 1 row; a zero-row target has no
    /// log-space label) — banked in the retraining corpus. If this
    /// observation trips a drift window and no retrain is already
    /// running, an incremental retrain is scheduled in the background.
    ///
    /// Returns the estimate the current model gave, whose
    /// `model_version` the feedback ack reports back to the client.
    pub fn feedback(&self, query: &Query, actual_card: u64) -> Result<Estimate, ServeError> {
        let estimate = self.estimate(query)?;
        self.record_feedback(query, estimate.cardinality, estimate.tier, actual_card);
        Ok(estimate)
    }

    /// The bookkeeping half of [`EstimationService::feedback`], for
    /// callers that already hold the current model's estimate for
    /// `query` (the sharded TCP front scores feedback against its own
    /// batched estimate instead of estimating twice): record the
    /// observation in the drift windows, bank the corpus entry, and
    /// schedule a retrain when a window trips. `tier` attributes the
    /// observed q-error to the pipeline tier that produced the estimate,
    /// feeding the per-tier accuracy histograms.
    pub(crate) fn record_feedback(
        &self,
        query: &Query,
        estimated: f64,
        tier: u8,
        actual_card: u64,
    ) {
        metrics::SERVE_FEEDBACK.inc();
        if actual_card >= 1 && estimated >= 1.0 {
            let actual = actual_card as f64;
            let qerror = (estimated / actual).max(actual / estimated);
            let hist = match tier {
                TIER_GBM => &metrics::TIER_GBM_QERROR_X100,
                TIER_FALLBACK => &metrics::TIER_FALLBACK_QERROR_X100,
                _ => &metrics::TIER_PRIMARY_QERROR_X100,
            };
            hist.record((qerror * 100.0).min(u64::MAX as f64) as u64);
        }
        let corpus_entry = (actual_card >= 1).then(|| {
            let mut labeled = annotate_query(&self.db, &self.samples, query.clone());
            labeled.cardinality = actual_card;
            labeled
        });
        let decision =
            self.drift.record(query.join_template(), estimated, actual_card, corpus_entry);
        if decision == DriftDecision::Retrain {
            metrics::DRIFT_TRIPS.inc();
            self.schedule_retrain();
        }
    }

    /// The cache half of [`EstimationService::submit`] for callers that
    /// run their own micro-batcher (the sharded TCP front): probe only,
    /// never enqueue. Hit/miss counters record exactly as in `submit`.
    pub(crate) fn probe_cache(&self, query: &Query) -> CacheProbe {
        if !self.cache.enabled() {
            return CacheProbe::Miss { query_key: None };
        }
        let mut query_key = query.to_canonical_bytes();
        let version = self.registry.active_version();
        query_key.extend_from_slice(&version.to_le_bytes());
        if let Some(cached) = self.cache.get(&query_key) {
            metrics::CACHE_HITS.inc();
            return CacheProbe::Hit(Estimate {
                cardinality: cached.cardinality,
                model_version: version,
                cache_hit: true,
                micro_batch: 0,
                tier: cached.tier,
                log_std: cached.log_std,
            });
        }
        query_key.truncate(query_key.len() - 4);
        metrics::CACHE_MISSES.inc();
        CacheProbe::Miss { query_key: Some(query_key) }
    }

    /// Insert a batch-produced estimate under the producing model
    /// version — the insert half of [`PendingEstimate::wait`], for the
    /// sharded front's resolution path.
    pub(crate) fn cache_insert(
        &self,
        mut query_key: Vec<u8>,
        model_version: u32,
        value: CachedEstimate,
    ) {
        if self.cache.enabled() {
            query_key.extend_from_slice(&model_version.to_le_bytes());
            self.cache.insert(query_key, value);
        }
    }

    /// Annotate `query` against this service's database snapshot and
    /// materialized samples (the featurization input every batcher
    /// expects).
    pub(crate) fn annotate(&self, query: &Query) -> lc_query::LabeledQuery {
        annotate_query(&self.db, &self.samples, query.clone())
    }

    /// The flush policy of this service's batcher — the sharded front
    /// clones it (with `workers: 0`) for its per-shard batchers.
    pub(crate) fn batcher_config(&self) -> BatcherConfig {
        self.batcher.config()
    }

    /// The TCP-front sizing/admission policy this service was built with.
    pub(crate) fn front_config(&self) -> FrontConfig {
        self.front
    }

    /// Spawn the background retrainer unless one is already in flight.
    /// The thread snapshots the feedback corpus, runs
    /// [`train_incremental`] (frozen featurizer, warm-started weights),
    /// publishes the result, and resets the drift windows — all while
    /// traffic keeps being served by the previous snapshot.
    fn schedule_retrain(&self) {
        if self
            .retrain_in_flight
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let drift = Arc::clone(&self.drift);
        let registry = Arc::clone(&self.registry);
        let in_flight = Arc::clone(&self.retrain_in_flight);
        let handle = std::thread::Builder::new()
            .name("lc-retrain".into())
            .spawn(move || {
                // Catch panics so a failed retrain can never wedge the
                // in-flight flag (which would silently disable
                // self-healing for the rest of the process).
                let span = SpanTimer::start(&metrics::RETRAIN_NS);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let corpus = drift.corpus_snapshot();
                    if !corpus.is_empty() {
                        let prev = registry.current();
                        let config = drift.config().retrain;
                        let retrained = train_incremental(prev.base(), &corpus, config);
                        registry.publish(retrained);
                        drift.on_publish();
                    }
                }));
                drop(span);
                in_flight.store(false, Ordering::Release);
                match result {
                    Ok(()) => metrics::RETRAIN_SUCCESS.inc(),
                    Err(_) => {
                        // The counter records every panic; the log line is
                        // rate-limited so a persistently failing retrain
                        // cannot flood stderr under sustained drift.
                        metrics::RETRAIN_PANICS.inc();
                        static PANIC_LOG: RateLimitedLog = RateLimitedLog::new();
                        if PANIC_LOG.should_log(std::time::Duration::from_secs(5)) {
                            eprintln!(
                                "lc-serve: background retrain panicked; model not updated \
                                 ({} panics total)",
                                metrics::RETRAIN_PANICS.get()
                            );
                        }
                    }
                }
            })
            .expect("spawn retrainer thread");
        let mut slot = self.retrainer.lock().expect("retrainer slot poisoned");
        // Any previous retrainer already dropped the in-flight flag, so
        // this join is (at most) a brief thread-exit wait.
        if let Some(previous) = slot.replace(handle) {
            let _ = previous.join();
        }
    }

    /// The model registry (hot-swap entry point).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The drift monitor (rolling windows, feedback corpus, counters).
    pub fn drift(&self) -> &DriftMonitor {
        &self.drift
    }

    /// True while a background incremental retrain is running.
    pub fn retrain_in_flight(&self) -> bool {
        self.retrain_in_flight.load(Ordering::Acquire)
    }

    /// Estimate-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Micro-batcher counters.
    pub fn batch_stats(&self) -> BatchStats {
        self.batcher.stats()
    }

    /// Synchronously process at most one queued batch (deterministic
    /// mode, `workers: 0`); returns its size.
    pub fn flush_now(&self) -> usize {
        self.batcher.flush_now()
    }

    /// Stop the batcher: drain queued requests, join workers (including
    /// any in-flight retrainer), and refuse new submissions. Idempotent
    /// (also runs on drop).
    pub fn shutdown(&self) {
        self.batcher.shutdown();
        let handle = self.retrainer.lock().expect("retrainer slot poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatcherConfig;
    use crate::cache::CacheConfig;
    use crate::config::DriftConfig;
    use lc_core::{train, Estimator, FeatureMode, MscnEstimator, TrainConfig};
    use lc_imdb::{generate, ImdbConfig};
    use lc_query::{workloads, LabeledQuery};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::time::{Duration, Instant};

    fn fixture() -> (Database, SampleSet, MscnEstimator, MscnEstimator, Vec<LabeledQuery>) {
        let db = generate(&ImdbConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(3);
        let samples = SampleSet::draw(&db, 24, &mut rng);
        let data = workloads::synthetic(&db, &samples, 140, 2, 71).queries;
        let cfg = TrainConfig {
            epochs: 2,
            hidden: 16,
            mode: FeatureMode::Bitmaps,
            ..TrainConfig::default()
        };
        let a = train(&db, 24, &data, cfg).estimator;
        let b = train(&db, 24, &data, TrainConfig { seed: 1234, ..cfg }).estimator;
        (db, samples, a, b, data)
    }

    fn service(workers: usize) -> (EstimationService, MscnEstimator, Vec<LabeledQuery>) {
        let (db, samples, a, _, data) = fixture();
        let registry = Arc::new(ModelRegistry::new(a.clone()));
        let config = ServeConfig {
            batcher: BatcherConfig { workers, ..BatcherConfig::default() },
            ..ServeConfig::default()
        };
        (EstimationService::new(db, samples, registry, config), a, data)
    }

    #[test]
    fn estimates_match_direct_inference_and_cache_on_repeat() {
        let (svc, est, data) = service(1);
        let q = &data[0].query;
        let direct = est.estimate(&data[0]);
        let first = svc.estimate(q).unwrap();
        assert_eq!(first.cardinality, direct, "service must not change the estimate");
        assert!(!first.cache_hit);
        assert!(first.micro_batch >= 1);
        let second = svc.estimate(q).unwrap();
        assert!(second.cache_hit, "repeat of the same query must hit the cache");
        assert_eq!(second.cardinality, direct);
        assert_eq!(second.micro_batch, 0);
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        svc.shutdown();
    }

    #[test]
    fn submit_then_wait_coalesces_a_whole_batch() {
        let (svc, est, data) = service(0);
        let expected: Vec<f64> = data[..16].iter().map(|q| est.estimate(q)).collect();
        let pending: Vec<_> = data[..16].iter().map(|l| svc.submit(&l.query)).collect();
        assert_eq!(svc.flush_now(), 16);
        for (p, want) in pending.into_iter().zip(expected) {
            let got = p.wait().unwrap();
            assert_eq!(got.cardinality, want);
            assert_eq!(got.micro_batch, 16);
        }
        assert_eq!(svc.batch_stats().batches, 1);
        // All 16 answers were cached on wait().
        assert_eq!(svc.cache_stats().entries, 16);
        for l in &data[..16] {
            assert!(svc.submit(&l.query).is_ready());
        }
    }

    #[test]
    fn hot_swap_under_concurrent_load_switches_versions_without_errors() {
        let (db, samples, a, b, data) = fixture();
        let expect_v1: Vec<f64> = data.iter().map(|q| a.estimate(q)).collect();
        let expect_v2: Vec<f64> = data.iter().map(|q| b.estimate(q)).collect();
        let registry = Arc::new(ModelRegistry::new(a));
        // Cache disabled so every request exercises inference against
        // whichever snapshot is active at flush time.
        let config = ServeConfig {
            cache: CacheConfig { capacity: 0, ..CacheConfig::default() },
            ..ServeConfig::default()
        };
        let svc = EstimationService::new(db, samples, Arc::clone(&registry), config);
        // 3 clients + the swapping main thread. Clients hammer the
        // service across the swap; the barrier guarantees requests land
        // both before and after it, so the assertions are deterministic.
        let swap_point = std::sync::Barrier::new(4);
        let swapped = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            let mut clients = Vec::new();
            for t in 0..3usize {
                let svc = &svc;
                let data = &data;
                let (swap_point, swapped) = (&swap_point, &swapped);
                let (expect_v1, expect_v2) = (&expect_v1, &expect_v2);
                clients.push(s.spawn(move || {
                    let mut saw = [false, false];
                    for round in 0..6 {
                        if round == 3 {
                            swap_point.wait(); // main publishes v2 between
                            swapped.wait(); // these two rendezvous
                        }
                        for (i, l) in data.iter().enumerate().skip(t * 7).step_by(3) {
                            let got = svc.estimate(&l.query).expect("serving during hot-swap");
                            // Every answer is exactly one version's answer
                            // — never a blend, whatever the swap timing.
                            match got.model_version {
                                1 => assert_eq!(got.cardinality, expect_v1[i]),
                                2 => assert_eq!(got.cardinality, expect_v2[i]),
                                v => panic!("unexpected version {v}"),
                            }
                            saw[got.model_version as usize - 1] = true;
                        }
                    }
                    saw
                }));
            }
            swap_point.wait();
            let v2 = registry.publish(b.clone());
            assert_eq!(v2, 2);
            swapped.wait();
            for client in clients {
                let saw = client.join().expect("client panicked");
                assert!(saw[0], "client never served by v1 before the swap");
                assert!(saw[1], "client never served by v2 after the swap");
            }
        });
        svc.shutdown();
    }

    #[test]
    fn cache_keys_include_the_model_version() {
        let (db, samples, a, b, data) = fixture();
        let q = &data[3].query;
        let registry = Arc::new(ModelRegistry::new(a.clone()));
        let svc =
            EstimationService::new(db, samples, Arc::clone(&registry), ServeConfig::default());
        let v1_answer = svc.estimate(q).unwrap();
        assert!(svc.estimate(q).unwrap().cache_hit);
        registry.publish(b.clone());
        // The v1 entry must not answer for v2.
        let after_swap = svc.estimate(q).unwrap();
        assert!(!after_swap.cache_hit, "stale cache entry served across a hot-swap");
        assert_eq!(after_swap.model_version, 2);
        assert_eq!(after_swap.cardinality, b.estimate(&data[3]));
        // Rolling back reuses the old entry: it is still keyed under v1.
        registry.activate(1).unwrap();
        let rolled_back = svc.estimate(q).unwrap();
        assert!(rolled_back.cache_hit);
        assert_eq!(rolled_back.cardinality, v1_answer.cardinality);
        svc.shutdown();
    }

    /// Regression guard for the `--quantized` deployment: a hot-swap
    /// must never serve an answer computed by the previous version's
    /// weights out of the cache. The quantized pipeline makes this
    /// observable — int8 and f32 answers differ slightly for the same
    /// base weights, so a stale entry would leak the wrong numerics,
    /// not just a stale version number.
    #[test]
    fn quantized_hot_swap_never_serves_stale_cache_answers() {
        let (db, samples, a, b, data) = fixture();
        let q = &data[3].query;
        let expect_v1 = lc_core::QuantizedMscn::quantize(&a).estimate(&data[3]);
        let expect_v2 = lc_core::QuantizedMscn::quantize(&b).estimate(&data[3]);
        let registry = Arc::new(ModelRegistry::with_pipeline(
            a,
            Box::new(|base| Arc::new(lc_core::QuantizedMscn::quantize(base))),
        ));
        let svc =
            EstimationService::new(db, samples, Arc::clone(&registry), ServeConfig::default());
        // First answer is the int8 path, and it gets cached under v1.
        let first = svc.estimate(q).unwrap();
        assert_eq!(first.cardinality, expect_v1);
        assert!(svc.estimate(q).unwrap().cache_hit);
        // Publish re-quantizes the new base; the v1 cache entry must
        // not answer for v2.
        registry.publish(b);
        let after_swap = svc.estimate(q).unwrap();
        assert!(!after_swap.cache_hit, "stale quantized cache entry served across a hot-swap");
        assert_eq!(after_swap.model_version, 2);
        assert_eq!(after_swap.cardinality, expect_v2);
        svc.shutdown();
    }

    #[test]
    fn estimate_after_shutdown_reports_shutdown() {
        let (svc, _, data) = service(1);
        svc.shutdown();
        assert_eq!(svc.estimate(&data[0].query), Err(ServeError::Shutdown));
    }

    /// The whole self-healing loop, in process form: feedback with large
    /// q-errors trips the drift monitor, a background retrain fires, and
    /// a strictly newer model version is published mid-service — without
    /// an estimate ever failing.
    #[test]
    fn feedback_driven_retrain_publishes_a_new_version() {
        let (db, samples, a, _, data) = fixture();
        let registry = Arc::new(ModelRegistry::new(a));
        let config = ServeConfig {
            drift: DriftConfig {
                window: 16,
                min_samples: 8,
                qerror_threshold: 2.0,
                min_corpus: 8,
                ..DriftConfig::default()
            },
            ..ServeConfig::default()
        };
        let svc = EstimationService::new(db, samples, Arc::clone(&registry), config);
        assert_eq!(registry.active_version(), 1);
        assert_eq!(svc.drift().retrains(), 0);

        // Report wildly wrong "actuals" so every observation has a huge
        // q-error; the labels themselves are valid training targets.
        // Drift windows are per join template, so repeat a handful of
        // queries: each repetition lands in the same window, and the
        // first template to accrue `min_samples` observations trips.
        for l in data.iter().take(5) {
            for _ in 0..8 {
                let est = svc.feedback(&l.query, 1_000_000).expect("feedback");
                assert!(est.cardinality >= 1.0);
            }
        }
        // The retrain runs in the background; wait for it (bounded).
        let deadline = Instant::now() + Duration::from_secs(30);
        while (svc.retrain_in_flight() || svc.drift().retrains() == 0) && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(svc.drift().retrains() >= 1, "drift never triggered a retrain");
        assert!(
            registry.active_version() >= 2,
            "retrain did not publish a new version (active {})",
            registry.active_version()
        );
        // Serving kept working across the publish.
        let est = svc.estimate(&data[0].query).expect("estimate after retrain");
        assert!(est.cardinality >= 1.0);
        svc.shutdown();
    }

    /// Zero-row feedback contributes to drift detection but is excluded
    /// from the corpus — ln(0) would poison the training targets.
    #[test]
    fn zero_row_feedback_never_reaches_the_corpus() {
        let (svc, _, data) = service(1);
        for l in data.iter().take(5) {
            svc.feedback(&l.query, 0).expect("feedback");
        }
        assert_eq!(svc.drift().feedback_count(), 5);
        assert!(svc.drift().corpus_snapshot().is_empty());
        svc.shutdown();
    }
}
