//! Uncertainty-routed estimator tiering.
//!
//! A learned estimator is only cheap *and* accurate inside its trained
//! distribution; under workload shift its errors explode silently. The
//! paper's remedy (§5 "Updates") is retraining — slow, minutes behind
//! the shift. [`TieredEstimator`] adds the fast half of the answer:
//! route each query by the primary model's **own trust signal** so the
//! common case keeps MSCN's speed and accuracy while the suspect tail
//! falls back to classical estimators whose formulas cannot be
//! out-of-distribution.
//!
//! Routing policy, per query, from the primary's
//! [`UncertainEstimate`](lc_core::UncertainEstimate):
//!
//! * **trustworthy** (`!saturated && log_std <= max_log_std`) — the
//!   primary answers ([`TIER_PRIMARY`]).
//! * **saturated** — the query's cardinality sits at or beyond the edge
//!   of the trained label range, where *every* learned tier is
//!   extrapolating; skip straight to the sampling fallback
//!   ([`TIER_FALLBACK`]).
//! * **high spread** (disagreeing ensemble members, not saturated) — the
//!   query is inside the trained range but the model family is unsure;
//!   the gradient-boosted-stumps middle tier ([`TIER_GBM`]) answers from
//!   coarse per-query features.
//!
//! A missing tier falls through (saturated → GBM → primary; high-spread
//! → fallback → primary), so a partially configured pipeline degrades
//! gracefully. Non-primary tiers run as sub-batches — one batched call
//! per tier per flush — and their per-call latency lands in the
//! `tier.*.estimate_ns` histograms; hit counters are the batcher's job
//! (it sees cache hits too).

use std::sync::Arc;
use std::time::Instant;

use lc_core::{Estimator, RoutedEstimate, UncertainEstimate};
use lc_obs::metrics;
use lc_query::LabeledQuery;

/// Tier id: the primary learned model (MSCN or a deep ensemble).
pub const TIER_PRIMARY: u8 = 0;
/// Tier id: the gradient-boosted-stumps middle tier.
pub const TIER_GBM: u8 = 1;
/// Tier id: the sampling/classical fallback (IBJS or Postgres-style).
pub const TIER_FALLBACK: u8 = 2;

/// A composite [`Estimator`] that routes each query across up to three
/// tiers by the primary tier's uncertainty (see the module docs for the
/// policy). Built by the serving bootstrap and installed in the
/// [`ModelRegistry`](crate::ModelRegistry) through
/// [`ModelRegistry::with_pipeline`](crate::ModelRegistry::with_pipeline).
pub struct TieredEstimator {
    primary: Arc<dyn Estimator + Send + Sync>,
    gbm: Option<Arc<dyn Estimator + Send + Sync>>,
    fallback: Option<Arc<dyn Estimator + Send + Sync>>,
    max_log_std: f64,
}

impl TieredEstimator {
    /// A pipeline with only a primary tier: every query is answered by
    /// `primary`, but saturation/spread still show up in the routing
    /// metadata. Add tiers with [`TieredEstimator::with_gbm`] and
    /// [`TieredEstimator::with_fallback`].
    pub fn new(primary: Arc<dyn Estimator + Send + Sync>, max_log_std: f64) -> Self {
        TieredEstimator { primary, gbm: None, fallback: None, max_log_std }
    }

    /// Install the middle tier for high-spread (but in-range) queries.
    pub fn with_gbm(mut self, gbm: Arc<dyn Estimator + Send + Sync>) -> Self {
        self.gbm = Some(gbm);
        self
    }

    /// Install the fallback tier for saturated (out-of-range) queries.
    pub fn with_fallback(mut self, fallback: Arc<dyn Estimator + Send + Sync>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// The trust threshold this pipeline routes on.
    pub fn max_log_std(&self) -> f64 {
        self.max_log_std
    }

    /// Which tier answers a query with this trust signal, after
    /// missing-tier fallthrough.
    fn route(&self, u: &UncertainEstimate) -> u8 {
        if u.is_trustworthy(self.max_log_std) {
            TIER_PRIMARY
        } else if u.saturated {
            // Out of trained range: prefer the sampling fallback, whose
            // formulas stay sane out of range; GBM at least saw the raw
            // features, the primary is pure extrapolation.
            if self.fallback.is_some() {
                TIER_FALLBACK
            } else if self.gbm.is_some() {
                TIER_GBM
            } else {
                TIER_PRIMARY
            }
        } else if self.gbm.is_some() {
            TIER_GBM
        } else if self.fallback.is_some() {
            TIER_FALLBACK
        } else {
            TIER_PRIMARY
        }
    }

    /// Primary uncertainties plus the routed answers derived from them.
    fn route_batch(
        &self,
        queries: &[LabeledQuery],
    ) -> (Vec<UncertainEstimate>, Vec<RoutedEstimate>) {
        let uncertain = self.primary.estimate_with_uncertainty(queries);
        let mut routed: Vec<RoutedEstimate> = uncertain
            .iter()
            .map(|u| RoutedEstimate {
                estimate: u.estimate,
                tier: self.route(u),
                log_std: u.log_std,
            })
            .collect();
        // Re-answer each rerouted subset with one batched call per tier.
        for (tier, est) in [(TIER_GBM, &self.gbm), (TIER_FALLBACK, &self.fallback)] {
            let Some(est) = est else { continue };
            let idx: Vec<usize> = (0..routed.len()).filter(|&i| routed[i].tier == tier).collect();
            if idx.is_empty() {
                continue;
            }
            let sub: Vec<LabeledQuery> = idx.iter().map(|&i| queries[i].clone()).collect();
            let started = lc_obs::enabled().then(Instant::now);
            let answers = est.estimate_all(&sub);
            if let Some(started) = started {
                let hist = if tier == TIER_GBM {
                    &metrics::TIER_GBM_NS
                } else {
                    &metrics::TIER_FALLBACK_NS
                };
                hist.record_duration(started.elapsed());
            }
            for (&i, answer) in idx.iter().zip(answers) {
                routed[i].estimate = answer.max(1.0);
            }
        }
        (uncertain, routed)
    }
}

impl std::fmt::Debug for TieredEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredEstimator")
            .field("primary", &self.primary.name())
            .field("gbm", &self.gbm.as_ref().map(|e| e.name()))
            .field("fallback", &self.fallback.as_ref().map(|e| e.name()))
            .field("max_log_std", &self.max_log_std)
            .finish()
    }
}

impl Estimator for TieredEstimator {
    fn name(&self) -> &str {
        "tiered"
    }

    /// The routed answers, re-attached to the *primary's* trust
    /// metadata: `log_std`/`saturated` always describe what the primary
    /// thought, whichever tier ended up answering — that is the signal
    /// drift monitors and dashboards want to watch.
    fn estimate_with_uncertainty(&self, queries: &[LabeledQuery]) -> Vec<UncertainEstimate> {
        let (uncertain, routed) = self.route_batch(queries);
        uncertain
            .into_iter()
            .zip(routed)
            .map(|(u, r)| UncertainEstimate { estimate: r.estimate, ..u })
            .collect()
    }

    fn estimate_routed(&self, queries: &[LabeledQuery]) -> Vec<RoutedEstimate> {
        self.route_batch(queries).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_query::Query;

    /// Scripted primary: answers `estimate` everywhere, with a fixed
    /// per-query trust signal.
    struct ScriptedPrimary {
        estimate: f64,
        signals: Vec<(f64, bool)>, // (log_std, saturated) per query
    }

    impl Estimator for ScriptedPrimary {
        fn name(&self) -> &str {
            "scripted"
        }
        fn estimate_with_uncertainty(&self, queries: &[LabeledQuery]) -> Vec<UncertainEstimate> {
            assert_eq!(queries.len(), self.signals.len(), "fixture drives full batches");
            self.signals
                .iter()
                .map(|&(log_std, saturated)| UncertainEstimate {
                    estimate: self.estimate,
                    log_std,
                    saturated,
                })
                .collect()
        }
    }

    /// Constant classical tier (no uncertainty channel of its own).
    struct Flat(f64);

    impl Estimator for Flat {
        fn name(&self) -> &str {
            "flat"
        }
        fn estimate_with_uncertainty(&self, queries: &[LabeledQuery]) -> Vec<UncertainEstimate> {
            queries
                .iter()
                .map(|_| UncertainEstimate { estimate: self.0, log_std: 0.0, saturated: false })
                .collect()
        }
    }

    fn queries(n: usize) -> Vec<LabeledQuery> {
        (0..n)
            .map(|_| LabeledQuery {
                query: Query::new(vec![], vec![], vec![]),
                cardinality: 0,
                sample_counts: vec![],
                bitmaps: vec![],
                pred_bitmaps: vec![],
            })
            .collect()
    }

    fn tiered(signals: Vec<(f64, bool)>) -> TieredEstimator {
        TieredEstimator::new(Arc::new(ScriptedPrimary { estimate: 100.0, signals }), 0.75)
            .with_gbm(Arc::new(Flat(200.0)))
            .with_fallback(Arc::new(Flat(300.0)))
    }

    #[test]
    fn agreement_routes_to_the_primary() {
        let est = tiered(vec![(0.0, false), (0.75, false)]);
        let routed = est.estimate_routed(&queries(2));
        for r in &routed {
            assert_eq!(r.tier, TIER_PRIMARY);
            assert_eq!(r.estimate, 100.0);
        }
        // The threshold is inclusive; the trust signal is passed through.
        assert_eq!(routed[1].log_std, 0.75);
    }

    #[test]
    fn disagreement_routes_to_gbm_and_saturation_to_fallback() {
        let est = tiered(vec![
            (0.2, false), // trustworthy         → primary
            (1.5, false), // high spread         → GBM
            (0.1, true),  // saturated, low std  → fallback (saturation wins)
            (2.0, true),  // saturated           → fallback
        ]);
        let routed = est.estimate_routed(&queries(4));
        assert_eq!(
            routed.iter().map(|r| r.tier).collect::<Vec<_>>(),
            vec![TIER_PRIMARY, TIER_GBM, TIER_FALLBACK, TIER_FALLBACK]
        );
        assert_eq!(
            routed.iter().map(|r| r.estimate).collect::<Vec<_>>(),
            vec![100.0, 200.0, 300.0, 300.0]
        );
        // log_std always reports the primary's spread, whoever answered.
        assert_eq!(routed[1].log_std, 1.5);
        assert_eq!(routed[3].log_std, 2.0);
    }

    #[test]
    fn missing_tiers_fall_through() {
        let signals = vec![(1.5, false), (0.0, true)];
        // No fallback: saturated queries fall through to GBM.
        let no_fallback = TieredEstimator::new(
            Arc::new(ScriptedPrimary { estimate: 100.0, signals: signals.clone() }),
            0.75,
        )
        .with_gbm(Arc::new(Flat(200.0)));
        let routed = no_fallback.estimate_routed(&queries(2));
        assert_eq!(routed.iter().map(|r| r.tier).collect::<Vec<_>>(), vec![TIER_GBM, TIER_GBM]);

        // No GBM: high-spread queries fall through to the fallback.
        let no_gbm = TieredEstimator::new(
            Arc::new(ScriptedPrimary { estimate: 100.0, signals: signals.clone() }),
            0.75,
        )
        .with_fallback(Arc::new(Flat(300.0)));
        let routed = no_gbm.estimate_routed(&queries(2));
        assert_eq!(
            routed.iter().map(|r| r.tier).collect::<Vec<_>>(),
            vec![TIER_FALLBACK, TIER_FALLBACK]
        );

        // Primary only: everything stays tier 0 even when untrusted.
        let solo =
            TieredEstimator::new(Arc::new(ScriptedPrimary { estimate: 100.0, signals }), 0.75);
        let routed = solo.estimate_routed(&queries(2));
        assert!(routed.iter().all(|r| r.tier == TIER_PRIMARY && r.estimate == 100.0));
    }

    #[test]
    fn uncertainty_view_matches_routing() {
        let est = tiered(vec![(0.2, false), (1.5, false), (0.3, true)]);
        let qs = queries(3);
        let routed = est.estimate_routed(&qs);
        let uncertain = est.estimate_with_uncertainty(&qs);
        for (r, u) in routed.iter().zip(&uncertain) {
            // Same answers through both entry points...
            assert_eq!(r.estimate, u.estimate);
            assert_eq!(r.log_std, u.log_std);
        }
        // ...and the primary's saturation flag survives rerouting.
        assert!(uncertain[2].saturated);
        assert_eq!(est.estimate_all(&qs), vec![100.0, 200.0, 300.0]);
        // The default single-query entry point routes too (its own
        // 1-query batch, hence a 1-signal fixture).
        let solo = tiered(vec![(0.3, true)]);
        assert_eq!(solo.estimate(&qs[0]), 300.0);
    }
}
