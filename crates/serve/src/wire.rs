//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message is one *frame*: a `u32` little-endian body length
//! followed by the body; the body's first byte is the message kind tag.
//! The layout discipline follows `lc_core::serialize` — explicit
//! little-endian fields via the `bytes` accessors, no self-describing
//! format — so the protocol stays auditable byte by byte:
//!
//! ```text
//! frame        := u32 body_len | body         (body_len ≤ MAX_FRAME_LEN)
//! body         := u8 kind | u64 id | payload
//!
//! # protocol version 1 (kinds 1–5)
//! request      := kind 1  | canonical query encoding
//! response     := kind 2  | f64 estimate | u32 model_version
//!                         | u32 micro_batch | u8 flags   (bit 0: cache hit)
//! error        := kind 3  | u32 len | utf-8 message
//! ping         := kind 4
//! pong         := kind 5
//!
//! # protocol version 2 (kinds 6–16)
//! hello        := kind 6  | u8 version | u8 capabilities
//! hello_ack    := kind 7  | u8 version | u8 capabilities (both negotiated)
//! feedback     := kind 8  | u64 actual_card | canonical query encoding
//! feedback_ack := kind 9  | u32 model_version
//! stats_req    := kind 10
//! stats        := kind 11 | u32 model_version | u32 retrains
//!                         | u64 feedback_count | u16 n | n × template_stat
//! drift_req    := kind 12
//! drift_status := kind 13 | u8 retrain_in_flight | u16 n | n × template_drift
//! metrics_req  := kind 14
//! metrics      := kind 15 | u64 uptime_ns | u16 n | n × scalar_metric
//!                         | u16 m | m × histogram_metric
//! busy         := kind 16 | u32 retry_after_ms
//! est_detail   := kind 17 | f64 estimate | u32 model_version
//!                         | u32 micro_batch | u8 flags   (bit 0: cache hit)
//!                         | u8 tier | f64 log_std
//!
//! template_stat  := u32 template | u64 count | f64 mean_qerror
//! template_drift := u32 template | u32 window_len | f64 rolling_qerror
//!                 | u8 tripped
//! scalar_metric  := u16 metric_id | u8 is_gauge | u64 value
//! histogram_metric := u16 metric_id | u64 sum | u64 max
//!                   | u64 mask | popcount(mask) × u64 bucket_count
//! ```
//!
//! A histogram's 64 log₂ buckets travel sparsely: `mask` bit *i* is set
//! iff bucket *i* is nonzero, and only the nonzero counts follow, in
//! bucket order. The encoding is canonical — a zero count under a set
//! mask bit is rejected as malformed — so encode → decode is exact and
//! a re-encode is byte-identical.
//!
//! # Versioning and capabilities
//!
//! A v2 client opens every connection with [`Message::Hello`] carrying
//! its protocol version and a capability byte; the server answers
//! [`Message::HelloAck`] with the **negotiated** pair (minimum version,
//! capability intersection — see [`negotiate`]). A v1 client never sends
//! a hello; the server simply treats the connection as v1 and keeps
//! answering kinds 1–5 exactly as before, which is what keeps old
//! clients working against new servers. Decoding is version-gated:
//! [`Message::decode_body`] run at version 1 rejects v2 kinds with
//! [`WireError::KindAboveVersion`] instead of misparsing them.
//!
//! Adding the next message is a one-arm diff: pick the next kind tag,
//! add the enum arm and its encode/decode match arms, and gate it on the
//! version that introduces it — the frame layer, hello exchange, and
//! error taxonomy all stay untouched.
//!
//! The message `id` is an opaque client token echoed back in the
//! matching response, so a client may pipeline requests on one
//! connection. Decoding is strict: every read is bounds-checked, a body
//! must be consumed exactly, and malformed input yields a typed
//! [`WireError`] that names the negotiated version being parsed — never
//! a panic, since these bytes arrive from the network.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut};
use lc_query::Query;

/// Upper bound on a frame body, bounding per-connection buffer growth. A
/// maximal query (hundreds of predicates) encodes to a few KiB; 1 MiB
/// leaves two orders of magnitude of headroom.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// The original protocol: kinds 1–5 (estimate, error, ping/pong).
pub const PROTOCOL_V1: u8 = 1;
/// The current protocol: adds hello negotiation, feedback, stats, drift
/// status, metrics, and busy/retry load-shedding (kinds 6–16).
pub const PROTOCOL_VERSION: u8 = 2;

/// Capability bit: the server accepts [`Message::Feedback`] frames.
pub const CAP_FEEDBACK: u8 = 1;
/// Capability bit: the server answers [`Message::StatsRequest`].
pub const CAP_STATS: u8 = 1 << 1;
/// Capability bit: the server answers [`Message::DriftStatusRequest`].
pub const CAP_DRIFT: u8 = 1 << 2;
/// Capability bit: the server answers [`Message::MetricsRequest`] with a
/// full [`Message::MetricsSnapshot`] of the `lc_obs` catalog.
pub const CAP_METRICS: u8 = 1 << 3;
/// Capability bit: under overload the server sheds this connection's
/// requests with [`Message::Busy`] (retry after a hint) instead of a
/// terse [`Message::Error`]. Clients that do not negotiate it — all v1
/// clients — keep receiving plain errors, byte-identically to before.
pub const CAP_RETRY: u8 = 1 << 4;
/// Capability bit: the server answers estimate requests with
/// [`Message::EstimateDetail`] (tier attribution + trust signal) instead
/// of the v1 [`Message::EstimateResponse`]. Connections that do not
/// negotiate it — all v1 clients and older v2 clients — keep receiving
/// plain responses, byte-identically to before.
pub const CAP_TIER: u8 = 1 << 5;
/// Every capability this build implements.
pub const CAPABILITIES: u8 =
    CAP_FEEDBACK | CAP_STATS | CAP_DRIFT | CAP_METRICS | CAP_RETRY | CAP_TIER;

/// Negotiate a hello: the connection runs at the *minimum* of the two
/// protocol versions and the *intersection* of the capability sets.
pub fn negotiate(client_version: u8, client_caps: u8) -> (u8, u8) {
    (client_version.min(PROTOCOL_VERSION), client_caps & CAPABILITIES)
}

/// Error produced by message decoding. Every variant records the
/// protocol `version` the decoder was negotiated to when it hit the
/// problem — on a shared port that is the difference between "this peer
/// is broken" and "this peer is speaking a newer protocol".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before a field: `need` bytes for `what`, only
    /// `have` left.
    Truncated {
        /// Negotiated protocol version being parsed.
        version: u8,
        /// The field being read when bytes ran out.
        what: &'static str,
        /// Bytes the field requires.
        need: usize,
        /// Bytes remaining in the body.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// Negotiated protocol version being parsed.
        version: u8,
        /// The advertised body length.
        len: usize,
    },
    /// A kind tag no protocol version defines.
    UnknownKind {
        /// Negotiated protocol version being parsed.
        version: u8,
        /// The offending kind tag.
        kind: u8,
    },
    /// A kind tag defined by a *newer* protocol version than the
    /// connection negotiated.
    KindAboveVersion {
        /// Negotiated protocol version being parsed.
        version: u8,
        /// The kind tag that needs a newer version.
        kind: u8,
    },
    /// Bytes left over after the body decoded completely.
    Trailing {
        /// Negotiated protocol version being parsed.
        version: u8,
        /// The kind tag that decoded cleanly before the garbage.
        kind: u8,
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The stream ended inside a frame (connection torn mid-message).
    Torn {
        /// Negotiated protocol version being parsed.
        version: u8,
        /// What the stream was inside when it ended.
        detail: String,
    },
    /// A field decoded but its value is invalid (bad flags, non-UTF-8
    /// text, nested query encoding errors, ...).
    Malformed {
        /// Negotiated protocol version being parsed.
        version: u8,
        /// Human-readable description.
        detail: String,
    },
}

impl WireError {
    /// The negotiated protocol version the decoder was running when it
    /// produced this error.
    pub fn version(&self) -> u8 {
        match self {
            WireError::Truncated { version, .. }
            | WireError::Oversized { version, .. }
            | WireError::UnknownKind { version, .. }
            | WireError::KindAboveVersion { version, .. }
            | WireError::Trailing { version, .. }
            | WireError::Torn { version, .. }
            | WireError::Malformed { version, .. } => *version,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error (v{}): ", self.version())?;
        match self {
            WireError::Truncated { what, need, have, .. } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            WireError::Oversized { len, .. } => {
                write!(f, "frame body of {len} bytes exceeds MAX_FRAME_LEN")
            }
            WireError::UnknownKind { kind, .. } => write!(f, "unknown frame kind {kind}"),
            WireError::KindAboveVersion { kind, version } => {
                write!(f, "frame kind {kind} needs a protocol version above {version}")
            }
            WireError::Trailing { kind, extra, .. } => {
                write!(f, "{extra} trailing bytes after kind-{kind} frame body")
            }
            WireError::Torn { detail, .. } => write!(f, "{detail}"),
            WireError::Malformed { detail, .. } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Response metadata flag: the estimate was answered from the cache.
const FLAG_CACHE_HIT: u8 = 1;

/// Per-join-template feedback summary carried by [`Message::Stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateStat {
    /// The [`Query::join_template`] key.
    pub template: u32,
    /// Feedback observations recorded for this template (lifetime).
    pub count: u64,
    /// Mean q-error over the template's current rolling window.
    pub mean_qerror: f64,
}

/// Per-join-template drift snapshot carried by [`Message::DriftStatus`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateDrift {
    /// The [`Query::join_template`] key.
    pub template: u32,
    /// Observations currently in the rolling window.
    pub window_len: u32,
    /// Mean q-error over the window (1.0 when empty).
    pub rolling_qerror: f64,
    /// True if this template's window is past the drift threshold.
    pub tripped: bool,
}

/// One counter or gauge value in a [`Message::MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarMetric {
    /// Index into the server's `lc_obs::CATALOG` (resolve names with
    /// `lc_obs::metric_name`).
    pub id: u16,
    /// True for a gauge (instantaneous), false for a counter
    /// (monotonic).
    pub gauge: bool,
    /// The value at snapshot time.
    pub value: u64,
}

/// One histogram state in a [`Message::MetricsSnapshot`]: the full
/// log₂-bucket counts plus exact sum and max, enough for a client to
/// compute count, mean, and quantiles — and, by differencing two
/// snapshots, interval rates and interval percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramMetric {
    /// Index into the server's `lc_obs::CATALOG`.
    pub id: u16,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts: bucket `i` counted values in `[2^i, 2^(i+1))`.
    pub buckets: [u64; 64],
}

/// One protocol message. Kinds 1–5 are protocol v1; 6–15 need v2.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: estimate the cardinality of `query`. (v1)
    EstimateRequest {
        /// Client-chosen token echoed back in the response.
        id: u64,
        /// The query to estimate.
        query: Query,
    },
    /// Server → client: the estimate plus serving metadata. (v1)
    EstimateResponse {
        /// Token of the request this answers.
        id: u64,
        /// Estimated cardinality in rows (≥ 1).
        estimate: f64,
        /// Version of the model snapshot that produced the estimate.
        model_version: u32,
        /// Size of the coalesced micro-batch this request rode in (0 for
        /// cache hits, which skip inference).
        micro_batch: u32,
        /// True if the estimate came from the cache.
        cache_hit: bool,
    },
    /// Server → client: the request could not be served. (v1)
    Error {
        /// Token of the offending request, 0 if it could not be decoded.
        id: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Liveness probe. (v1)
    Ping {
        /// Echo token.
        id: u64,
    },
    /// Liveness reply. (v1)
    Pong {
        /// Echo token.
        id: u64,
    },
    /// Client → server, first message on a connection: protocol version
    /// and requested capabilities. (v2)
    Hello {
        /// Echo token.
        id: u64,
        /// The highest protocol version the client speaks.
        version: u8,
        /// Capability bits the client wants ([`CAP_FEEDBACK`] | ...).
        capabilities: u8,
    },
    /// Server → client: the negotiated version and capabilities the
    /// connection will run with (see [`negotiate`]). (v2)
    HelloAck {
        /// Token of the hello this answers.
        id: u64,
        /// Negotiated protocol version (min of the two).
        version: u8,
        /// Negotiated capabilities (intersection).
        capabilities: u8,
    },
    /// Client → server: the true cardinality observed after executing
    /// `query` — the raw material of drift detection and incremental
    /// retraining. (v2)
    Feedback {
        /// Client-chosen token echoed back in the ack.
        id: u64,
        /// The executed query.
        query: Query,
        /// The true row count the execution produced.
        actual_card: u64,
    },
    /// Server → client: feedback recorded. (v2)
    FeedbackAck {
        /// Token of the feedback this answers.
        id: u64,
        /// The model version that was active when the feedback was
        /// scored (clients watch this increase across retrains).
        model_version: u32,
    },
    /// Client → server: ask for serving statistics. (v2)
    StatsRequest {
        /// Echo token.
        id: u64,
    },
    /// Server → client: retrain/feedback counters and per-template
    /// q-error. (v2)
    Stats {
        /// Token of the request this answers.
        id: u64,
        /// The currently active model version.
        model_version: u32,
        /// Completed drift-triggered retrains since startup.
        retrains: u32,
        /// Feedback frames recorded since startup.
        feedback_count: u64,
        /// Per-join-template rolling q-error summaries.
        templates: Vec<TemplateStat>,
    },
    /// Client → server: ask for the drift monitor's current state. (v2)
    DriftStatusRequest {
        /// Echo token.
        id: u64,
    },
    /// Server → client: the drift monitor's window state. (v2)
    DriftStatus {
        /// Token of the request this answers.
        id: u64,
        /// True while an incremental retrain is running in the
        /// background.
        retrain_in_flight: bool,
        /// Per-join-template window snapshots.
        templates: Vec<TemplateDrift>,
    },
    /// Client → server: ask for a full metrics snapshot (requires
    /// [`CAP_METRICS`]). (v2)
    MetricsRequest {
        /// Echo token.
        id: u64,
    },
    /// Server → client: every metric in the server's `lc_obs` catalog
    /// at one instant. (v2)
    MetricsSnapshot {
        /// Token of the request this answers.
        id: u64,
        /// Nanoseconds the server process has been up.
        uptime_ns: u64,
        /// Every counter and gauge, in catalog-id order.
        scalars: Vec<ScalarMetric>,
        /// Every histogram, in catalog-id order.
        histograms: Vec<HistogramMetric>,
    },
    /// Server → client: the request was shed by admission control (the
    /// shard's in-flight budget or the global connection cap was hit).
    /// Sent only on connections that negotiated [`CAP_RETRY`]; the
    /// request was **not** processed and should be retried after the
    /// hinted delay, ideally with jitter. (v2)
    Busy {
        /// Token of the request that was shed.
        id: u64,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// Server → client: the estimate plus routing metadata — which tier
    /// of the serving pipeline answered and the primary model's trust
    /// signal. Sent instead of [`Message::EstimateResponse`] on
    /// connections that negotiated [`CAP_TIER`]. (v2)
    EstimateDetail {
        /// Token of the request this answers.
        id: u64,
        /// Estimated cardinality in rows (≥ 1).
        estimate: f64,
        /// Version of the model snapshot that produced the estimate.
        model_version: u32,
        /// Size of the coalesced micro-batch this request rode in (0 for
        /// cache hits, which skip inference).
        micro_batch: u32,
        /// True if the estimate came from the cache.
        cache_hit: bool,
        /// The pipeline tier that answered (0 = primary MSCN/ensemble,
        /// 1 = GBM stumps, 2 = sampling fallback).
        tier: u8,
        /// The primary model's log-standard-deviation trust signal for
        /// this query (0 when the primary has no uncertainty channel).
        log_std: f64,
    },
}

/// The lowest protocol version that defines kind tag `kind`, or `None`
/// if no version does.
fn kind_min_version(kind: u8) -> Option<u8> {
    match kind {
        1..=5 => Some(PROTOCOL_V1),
        6..=17 => Some(PROTOCOL_VERSION),
        _ => None,
    }
}

fn need(buf: &[u8], n: usize, what: &'static str, version: u8) -> Result<(), WireError> {
    if buf.remaining() < n {
        return Err(WireError::Truncated { version, what, need: n, have: buf.remaining() });
    }
    Ok(())
}

/// Decode a strict wire bool (`0` or `1`; anything else is malformed).
fn get_bool(buf: &mut &[u8], what: &str, version: u8) -> Result<bool, WireError> {
    match buf.get_u8() {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(WireError::Malformed { version, detail: format!("{what} byte {b:#04x} not 0|1") }),
    }
}

impl Message {
    /// The kind tag this message encodes with.
    pub fn kind(&self) -> u8 {
        match self {
            Message::EstimateRequest { .. } => 1,
            Message::EstimateResponse { .. } => 2,
            Message::Error { .. } => 3,
            Message::Ping { .. } => 4,
            Message::Pong { .. } => 5,
            Message::Hello { .. } => 6,
            Message::HelloAck { .. } => 7,
            Message::Feedback { .. } => 8,
            Message::FeedbackAck { .. } => 9,
            Message::StatsRequest { .. } => 10,
            Message::Stats { .. } => 11,
            Message::DriftStatusRequest { .. } => 12,
            Message::DriftStatus { .. } => 13,
            Message::MetricsRequest { .. } => 14,
            Message::MetricsSnapshot { .. } => 15,
            Message::Busy { .. } => 16,
            Message::EstimateDetail { .. } => 17,
        }
    }

    /// The lowest protocol version that can carry this message.
    pub fn min_version(&self) -> u8 {
        kind_min_version(self.kind()).expect("every constructed message has a version")
    }

    /// Append the full frame (length prefix + body) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.put_u32_le(0); // patched below
        buf.put_u8(self.kind());
        match self {
            Message::EstimateRequest { id, query } => {
                buf.put_u64_le(*id);
                query.encode(buf);
            }
            Message::EstimateResponse { id, estimate, model_version, micro_batch, cache_hit } => {
                buf.put_u64_le(*id);
                buf.put_f64_le(*estimate);
                buf.put_u32_le(*model_version);
                buf.put_u32_le(*micro_batch);
                buf.put_u8(if *cache_hit { FLAG_CACHE_HIT } else { 0 });
            }
            Message::Error { id, message } => {
                buf.put_u64_le(*id);
                let bytes = message.as_bytes();
                buf.put_u32_le(bytes.len() as u32);
                buf.put_slice(bytes);
            }
            Message::Ping { id }
            | Message::Pong { id }
            | Message::StatsRequest { id }
            | Message::DriftStatusRequest { id }
            | Message::MetricsRequest { id } => {
                buf.put_u64_le(*id);
            }
            Message::Hello { id, version, capabilities }
            | Message::HelloAck { id, version, capabilities } => {
                buf.put_u64_le(*id);
                buf.put_u8(*version);
                buf.put_u8(*capabilities);
            }
            Message::Feedback { id, query, actual_card } => {
                buf.put_u64_le(*id);
                buf.put_u64_le(*actual_card);
                query.encode(buf);
            }
            Message::FeedbackAck { id, model_version } => {
                buf.put_u64_le(*id);
                buf.put_u32_le(*model_version);
            }
            Message::Stats { id, model_version, retrains, feedback_count, templates } => {
                buf.put_u64_le(*id);
                buf.put_u32_le(*model_version);
                buf.put_u32_le(*retrains);
                buf.put_u64_le(*feedback_count);
                buf.put_u16_le(templates.len() as u16);
                for t in templates {
                    buf.put_u32_le(t.template);
                    buf.put_u64_le(t.count);
                    buf.put_f64_le(t.mean_qerror);
                }
            }
            Message::DriftStatus { id, retrain_in_flight, templates } => {
                buf.put_u64_le(*id);
                buf.put_u8(u8::from(*retrain_in_flight));
                buf.put_u16_le(templates.len() as u16);
                for t in templates {
                    buf.put_u32_le(t.template);
                    buf.put_u32_le(t.window_len);
                    buf.put_f64_le(t.rolling_qerror);
                    buf.put_u8(u8::from(t.tripped));
                }
            }
            Message::MetricsSnapshot { id, uptime_ns, scalars, histograms } => {
                buf.put_u64_le(*id);
                buf.put_u64_le(*uptime_ns);
                buf.put_u16_le(scalars.len() as u16);
                for s in scalars {
                    buf.put_u16_le(s.id);
                    buf.put_u8(u8::from(s.gauge));
                    buf.put_u64_le(s.value);
                }
                buf.put_u16_le(histograms.len() as u16);
                for h in histograms {
                    buf.put_u16_le(h.id);
                    buf.put_u64_le(h.sum);
                    buf.put_u64_le(h.max);
                    let mut mask = 0u64;
                    for (i, &count) in h.buckets.iter().enumerate() {
                        if count != 0 {
                            mask |= 1 << i;
                        }
                    }
                    buf.put_u64_le(mask);
                    for &count in h.buckets.iter().filter(|&&count| count != 0) {
                        buf.put_u64_le(count);
                    }
                }
            }
            Message::Busy { id, retry_after_ms } => {
                buf.put_u64_le(*id);
                buf.put_u32_le(*retry_after_ms);
            }
            Message::EstimateDetail {
                id,
                estimate,
                model_version,
                micro_batch,
                cache_hit,
                tier,
                log_std,
            } => {
                buf.put_u64_le(*id);
                buf.put_f64_le(*estimate);
                buf.put_u32_le(*model_version);
                buf.put_u32_le(*micro_batch);
                buf.put_u8(if *cache_hit { FLAG_CACHE_HIT } else { 0 });
                buf.put_u8(*tier);
                buf.put_f64_le(*log_std);
            }
        }
        let body_len = (buf.len() - start - 4) as u32;
        buf[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// The encoded frame as an owned buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode(&mut buf);
        buf
    }

    /// Decode one frame *body* (everything after the length prefix) at
    /// the negotiated protocol `version`. Strict: the body must be
    /// consumed exactly; trailing bytes are a protocol violation; kinds
    /// introduced by a newer version than `version` are rejected with
    /// [`WireError::KindAboveVersion`] (this is how a v1 connection
    /// refuses v2 traffic without misparsing it).
    pub fn decode_body(body: &[u8], version: u8) -> Result<Message, WireError> {
        let mut buf = body;
        need(buf, 1, "kind tag", version)?;
        let kind = buf.get_u8();
        match kind_min_version(kind) {
            None => return Err(WireError::UnknownKind { version, kind }),
            Some(min) if min > version => {
                return Err(WireError::KindAboveVersion { version, kind });
            }
            Some(_) => {}
        }
        need(buf, 8, "message id", version)?;
        let id = buf.get_u64_le();
        let message = match kind {
            1 => {
                let query = Query::decode(&mut buf).map_err(|e| WireError::Malformed {
                    version,
                    detail: format!("request: {}", e.0),
                })?;
                Message::EstimateRequest { id, query }
            }
            2 => {
                need(buf, 8 + 4 + 4 + 1, "response payload", version)?;
                let estimate = buf.get_f64_le();
                let model_version = buf.get_u32_le();
                let micro_batch = buf.get_u32_le();
                let flags = buf.get_u8();
                if flags & !FLAG_CACHE_HIT != 0 {
                    return Err(WireError::Malformed {
                        version,
                        detail: format!("unknown response flags {flags:#04x}"),
                    });
                }
                Message::EstimateResponse {
                    id,
                    estimate,
                    model_version,
                    micro_batch,
                    cache_hit: flags & FLAG_CACHE_HIT != 0,
                }
            }
            3 => {
                need(buf, 4, "error length", version)?;
                let len = buf.get_u32_le() as usize;
                need(buf, len, "error message", version)?;
                let message = String::from_utf8(buf.take_bytes(len).to_vec()).map_err(|_| {
                    WireError::Malformed { version, detail: "error message is not UTF-8".into() }
                })?;
                Message::Error { id, message }
            }
            4 => Message::Ping { id },
            5 => Message::Pong { id },
            6 | 7 => {
                need(buf, 2, "hello payload", version)?;
                let peer_version = buf.get_u8();
                let capabilities = buf.get_u8();
                if peer_version == 0 {
                    return Err(WireError::Malformed {
                        version,
                        detail: "hello advertises protocol version 0".into(),
                    });
                }
                if kind == 6 {
                    Message::Hello { id, version: peer_version, capabilities }
                } else {
                    Message::HelloAck { id, version: peer_version, capabilities }
                }
            }
            8 => {
                need(buf, 8, "feedback cardinality", version)?;
                let actual_card = buf.get_u64_le();
                let query = Query::decode(&mut buf).map_err(|e| WireError::Malformed {
                    version,
                    detail: format!("feedback query: {}", e.0),
                })?;
                Message::Feedback { id, query, actual_card }
            }
            9 => {
                need(buf, 4, "feedback ack payload", version)?;
                Message::FeedbackAck { id, model_version: buf.get_u32_le() }
            }
            10 => Message::StatsRequest { id },
            11 => {
                need(buf, 4 + 4 + 8 + 2, "stats header", version)?;
                let model_version = buf.get_u32_le();
                let retrains = buf.get_u32_le();
                let feedback_count = buf.get_u64_le();
                let n = buf.get_u16_le() as usize;
                need(buf, n * (4 + 8 + 8), "stats templates", version)?;
                let templates = (0..n)
                    .map(|_| TemplateStat {
                        template: buf.get_u32_le(),
                        count: buf.get_u64_le(),
                        mean_qerror: buf.get_f64_le(),
                    })
                    .collect();
                Message::Stats { id, model_version, retrains, feedback_count, templates }
            }
            12 => Message::DriftStatusRequest { id },
            13 => {
                need(buf, 1 + 2, "drift status header", version)?;
                let retrain_in_flight = get_bool(&mut buf, "retrain-in-flight", version)?;
                let n = buf.get_u16_le() as usize;
                need(buf, n * (4 + 4 + 8 + 1), "drift templates", version)?;
                let templates = (0..n)
                    .map(|_| -> Result<TemplateDrift, WireError> {
                        Ok(TemplateDrift {
                            template: buf.get_u32_le(),
                            window_len: buf.get_u32_le(),
                            rolling_qerror: buf.get_f64_le(),
                            tripped: get_bool(&mut buf, "tripped", version)?,
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Message::DriftStatus { id, retrain_in_flight, templates }
            }
            14 => Message::MetricsRequest { id },
            15 => {
                need(buf, 8 + 2, "metrics header", version)?;
                let uptime_ns = buf.get_u64_le();
                let n = buf.get_u16_le() as usize;
                need(buf, n * (2 + 1 + 8), "metrics scalars", version)?;
                let scalars = (0..n)
                    .map(|_| -> Result<ScalarMetric, WireError> {
                        let metric_id = buf.get_u16_le();
                        let gauge = get_bool(&mut buf, "scalar metric kind", version)?;
                        Ok(ScalarMetric { id: metric_id, gauge, value: buf.get_u64_le() })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                need(buf, 2, "metrics histogram count", version)?;
                let n = buf.get_u16_le() as usize;
                let mut histograms = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    need(buf, 2 + 8 + 8 + 8, "histogram metric header", version)?;
                    let metric_id = buf.get_u16_le();
                    let sum = buf.get_u64_le();
                    let max = buf.get_u64_le();
                    let mask = buf.get_u64_le();
                    need(buf, mask.count_ones() as usize * 8, "histogram buckets", version)?;
                    let mut buckets = [0u64; 64];
                    for (i, bucket) in buckets.iter_mut().enumerate() {
                        if mask & (1 << i) != 0 {
                            let count = buf.get_u64_le();
                            if count == 0 {
                                return Err(WireError::Malformed {
                                    version,
                                    detail: format!(
                                        "histogram metric {metric_id}: zero count under set mask \
                                         bit {i} (non-canonical encoding)"
                                    ),
                                });
                            }
                            *bucket = count;
                        }
                    }
                    histograms.push(HistogramMetric { id: metric_id, sum, max, buckets });
                }
                Message::MetricsSnapshot { id, uptime_ns, scalars, histograms }
            }
            16 => {
                need(buf, 4, "busy payload", version)?;
                Message::Busy { id, retry_after_ms: buf.get_u32_le() }
            }
            17 => {
                need(buf, 8 + 4 + 4 + 1 + 1 + 8, "detail payload", version)?;
                let estimate = buf.get_f64_le();
                let model_version = buf.get_u32_le();
                let micro_batch = buf.get_u32_le();
                let flags = buf.get_u8();
                if flags & !FLAG_CACHE_HIT != 0 {
                    return Err(WireError::Malformed {
                        version,
                        detail: format!("unknown detail flags {flags:#04x}"),
                    });
                }
                let tier = buf.get_u8();
                let log_std = buf.get_f64_le();
                Message::EstimateDetail {
                    id,
                    estimate,
                    model_version,
                    micro_batch,
                    cache_hit: flags & FLAG_CACHE_HIT != 0,
                    tier,
                    log_std,
                }
            }
            t => unreachable!("kind {t} passed the version gate but has no decoder"),
        };
        if !buf.is_empty() {
            return Err(WireError::Trailing { version, kind, extra: buf.len() });
        }
        Ok(message)
    }

    /// Try to decode one full frame from the front of `buf` at the
    /// negotiated protocol `version`.
    ///
    /// Returns `Ok(None)` when `buf` holds only an incomplete frame
    /// (read more bytes and retry), `Ok(Some((message, consumed)))` on
    /// success, and `Err` on a malformed frame.
    pub fn decode_prefix(buf: &[u8], version: u8) -> Result<Option<(Message, usize)>, WireError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_FRAME_LEN {
            return Err(WireError::Oversized { version, len: body_len });
        }
        if buf.len() < 4 + body_len {
            return Ok(None);
        }
        let message = Message::decode_body(&buf[4..4 + body_len], version)?;
        Ok(Some((message, 4 + body_len)))
    }
}

/// Read one message from a blocking stream, decoding at the negotiated
/// protocol `version`. Returns `Ok(None)` only on a *clean* EOF — the
/// peer closed exactly on a frame boundary. An EOF inside the length
/// prefix or the body is a torn frame and surfaces as
/// [`io::ErrorKind::InvalidData`], like every other wire error.
pub fn read_message(reader: &mut impl Read, version: u8) -> io::Result<Option<Message>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    WireError::Torn {
                        version,
                        detail: format!("connection closed mid length prefix ({filled}/4 bytes)"),
                    },
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let body_len = u32::from_le_bytes(len_bytes) as usize;
    if body_len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Oversized { version, len: body_len },
        ));
    }
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::InvalidData,
                WireError::Torn {
                    version,
                    detail: format!("connection closed mid frame body ({body_len} bytes expected)"),
                },
            )
        } else {
            e
        }
    })?;
    let message = Message::decode_body(&body, version)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Some(message))
}

/// Write one message to a blocking stream (the caller flushes).
pub fn write_message(writer: &mut impl Write, message: &Message) -> io::Result<()> {
    writer.write_all(&message.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_engine::{CmpOp, JoinId, Predicate, TableId};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sample_query() -> Query {
        Query::new(
            vec![TableId(0), TableId(2)],
            vec![JoinId(1)],
            vec![
                Predicate { table: TableId(0), column: 2, op: CmpOp::Gt, value: 1995 },
                Predicate { table: TableId(2), column: 1, op: CmpOp::Eq, value: -3 },
            ],
        )
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::EstimateRequest { id: 7, query: sample_query() },
            Message::EstimateRequest { id: u64::MAX, query: Query::new(vec![], vec![], vec![]) },
            Message::EstimateResponse {
                id: 9,
                estimate: 12345.75,
                model_version: 3,
                micro_batch: 64,
                cache_hit: true,
            },
            Message::Error { id: 0, message: "no such model".into() },
            Message::Error { id: 1, message: String::new() },
            Message::Ping { id: 42 },
            Message::Pong { id: 42 },
            Message::Hello { id: 1, version: PROTOCOL_VERSION, capabilities: CAPABILITIES },
            Message::HelloAck { id: 1, version: PROTOCOL_V1, capabilities: 0 },
            Message::Feedback { id: 11, query: sample_query(), actual_card: 123_456 },
            Message::Feedback { id: 12, query: Query::new(vec![], vec![], vec![]), actual_card: 0 },
            Message::FeedbackAck { id: 11, model_version: 4 },
            Message::StatsRequest { id: 21 },
            Message::Stats {
                id: 21,
                model_version: 4,
                retrains: 2,
                feedback_count: 900,
                templates: vec![
                    TemplateStat { template: 0x0001_0003, count: 512, mean_qerror: 1.75 },
                    TemplateStat { template: 0x0007_000F, count: 17, mean_qerror: 96.5 },
                ],
            },
            Message::Stats {
                id: 22,
                model_version: 1,
                retrains: 0,
                feedback_count: 0,
                templates: vec![],
            },
            Message::DriftStatusRequest { id: 31 },
            Message::DriftStatus {
                id: 31,
                retrain_in_flight: true,
                templates: vec![TemplateDrift {
                    template: 0x0001_0003,
                    window_len: 64,
                    rolling_qerror: 8.25,
                    tripped: true,
                }],
            },
            Message::DriftStatus { id: 32, retrain_in_flight: false, templates: vec![] },
            Message::MetricsRequest { id: 41 },
            Message::MetricsSnapshot {
                id: 41,
                uptime_ns: 5_000_000_000,
                scalars: vec![
                    ScalarMetric { id: 0, gauge: false, value: 12_345 },
                    ScalarMetric { id: 14, gauge: true, value: 7 },
                ],
                histograms: vec![
                    HistogramMetric { id: 18, sum: 0, max: 0, buckets: [0; 64] },
                    HistogramMetric {
                        id: 19,
                        sum: u64::MAX,
                        max: u64::MAX,
                        buckets: {
                            let mut b = [0u64; 64];
                            b[0] = 3;
                            b[17] = 1_000_000;
                            b[63] = 1;
                            b
                        },
                    },
                ],
            },
            Message::MetricsSnapshot { id: 42, uptime_ns: 0, scalars: vec![], histograms: vec![] },
            Message::Busy { id: 51, retry_after_ms: 50 },
            Message::Busy { id: u64::MAX, retry_after_ms: 0 },
            Message::EstimateDetail {
                id: 52,
                estimate: 4096.0,
                model_version: 3,
                micro_batch: 8,
                cache_hit: false,
                tier: 1,
                log_std: 1.75,
            },
            Message::EstimateDetail {
                id: u64::MAX,
                estimate: 1.0,
                model_version: u32::MAX,
                micro_batch: 0,
                cache_hit: true,
                tier: u8::MAX,
                log_std: -0.0,
            },
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        for message in sample_messages() {
            let bytes = message.to_bytes();
            let (back, consumed) = Message::decode_prefix(&bytes, PROTOCOL_VERSION)
                .expect("decode")
                .expect("complete");
            assert_eq!(back, message);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn decode_prefix_handles_partial_and_concatenated_frames() {
        let a = Message::Ping { id: 1 }.to_bytes();
        let b = Message::EstimateRequest { id: 2, query: sample_query() }.to_bytes();
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        // Concatenated: first decode consumes exactly `a`, second exactly `b`.
        let (f1, c1) = Message::decode_prefix(&stream, PROTOCOL_VERSION).unwrap().unwrap();
        assert_eq!(f1, Message::Ping { id: 1 });
        assert_eq!(c1, a.len());
        let (f2, c2) = Message::decode_prefix(&stream[c1..], PROTOCOL_VERSION).unwrap().unwrap();
        assert_eq!(c2, b.len());
        assert!(matches!(f2, Message::EstimateRequest { id: 2, .. }));
        // Partial: any prefix of one frame is incomplete, not an error.
        for cut in 0..b.len() {
            assert_eq!(
                Message::decode_prefix(&b[..cut], PROTOCOL_VERSION).unwrap(),
                None,
                "cut at {cut}"
            );
        }
    }

    /// The sharded server decodes incrementally: whatever the socket
    /// delivers is appended to a connection buffer, complete frames are
    /// peeled off with [`Message::decode_prefix`], and the partial tail
    /// is carried into the next read. A split at *any* byte offset —
    /// including inside the length prefix — must therefore be invisible.
    /// This drives the full all-kinds stream through that exact
    /// algorithm for every two-chunk split, and once fed a byte at a
    /// time (the worst case: every read is a partial frame).
    #[test]
    fn incremental_decode_is_split_invariant_at_every_byte_offset() {
        let messages = sample_messages();
        let mut stream = Vec::new();
        for message in &messages {
            stream.extend_from_slice(&message.to_bytes());
        }
        let feed = |chunks: &mut dyn Iterator<Item = &[u8]>| {
            let mut inbuf: Vec<u8> = Vec::new();
            let mut decoded = Vec::new();
            for chunk in chunks {
                inbuf.extend_from_slice(chunk);
                let mut offset = 0;
                while let Some((message, consumed)) =
                    Message::decode_prefix(&inbuf[offset..], PROTOCOL_VERSION).expect("decode")
                {
                    decoded.push(message);
                    offset += consumed;
                }
                inbuf.drain(..offset);
            }
            assert!(inbuf.is_empty(), "{} bytes left undecoded", inbuf.len());
            decoded
        };
        for split in 0..=stream.len() {
            let decoded = feed(&mut [&stream[..split], &stream[split..]].into_iter());
            assert_eq!(decoded, messages, "two-chunk split at byte {split}");
        }
        let decoded = feed(&mut stream.chunks(1));
        assert_eq!(decoded, messages, "byte-at-a-time feed");
    }

    /// Every truncation offset of every message body (old kinds *and*
    /// the v2 Feedback/Stats/DriftStatus bodies) must error, never panic
    /// or misparse.
    #[test]
    fn every_truncation_of_every_body_errors() {
        for message in sample_messages() {
            let bytes = message.to_bytes();
            let body = &bytes[4..];
            for cut in 0..body.len() {
                assert!(
                    Message::decode_body(&body[..cut], PROTOCOL_VERSION).is_err(),
                    "{message:?}: body truncated at {cut}/{} decoded successfully",
                    body.len()
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_and_bad_tags_error() {
        for message in sample_messages() {
            let mut body = message.to_bytes()[4..].to_vec();
            body.push(0xAB);
            match Message::decode_body(&body, PROTOCOL_VERSION) {
                Err(WireError::Trailing { extra: 1, .. }) => {}
                // Variable-length tails (query / text) may absorb the
                // extra byte into a length field and fail differently —
                // any error is acceptable, success is not.
                Err(_) => {}
                Ok(m) => panic!("trailing byte after {message:?} decoded as {m:?}"),
            }
        }

        let mut bad_kind = Message::Ping { id: 3 }.to_bytes()[4..].to_vec();
        bad_kind[0] = 99;
        let err = Message::decode_body(&bad_kind, PROTOCOL_VERSION).unwrap_err();
        assert_eq!(err, WireError::UnknownKind { version: PROTOCOL_VERSION, kind: 99 });
        assert!(err.to_string().contains("unknown frame kind"));

        let resp = Message::EstimateResponse {
            id: 1,
            estimate: 2.0,
            model_version: 1,
            micro_batch: 1,
            cache_hit: false,
        };
        let mut bad_flags = resp.to_bytes()[4..].to_vec();
        let last = bad_flags.len() - 1;
        bad_flags[last] = 0xF0;
        assert!(Message::decode_body(&bad_flags, PROTOCOL_VERSION)
            .unwrap_err()
            .to_string()
            .contains("flags"));

        let detail = Message::EstimateDetail {
            id: 1,
            estimate: 2.0,
            model_version: 1,
            micro_batch: 1,
            cache_hit: false,
            tier: 0,
            log_std: 0.0,
        };
        let mut bad_detail = detail.to_bytes()[4..].to_vec();
        // flags byte sits between micro_batch and tier: kind + id +
        // estimate + model_version + micro_batch = 1 + 8 + 8 + 4 + 4.
        bad_detail[25] = 0xF0;
        assert!(Message::decode_body(&bad_detail, PROTOCOL_VERSION)
            .unwrap_err()
            .to_string()
            .contains("flags"));
    }

    /// A v1 connection rejects v2 kinds with a dedicated error (not
    /// "unknown"), and the error names the negotiated version — the
    /// satellite fix: truncation/corruption errors now say which
    /// protocol version was being parsed.
    #[test]
    fn version_gate_and_error_versions() {
        let v2_only = [
            Message::Hello { id: 1, version: 2, capabilities: CAPABILITIES },
            Message::Feedback { id: 2, query: sample_query(), actual_card: 10 },
            Message::StatsRequest { id: 3 },
            Message::DriftStatusRequest { id: 4 },
            Message::MetricsRequest { id: 5 },
            Message::Busy { id: 6, retry_after_ms: 25 },
            Message::EstimateDetail {
                id: 7,
                estimate: 32.0,
                model_version: 1,
                micro_batch: 4,
                cache_hit: false,
                tier: 2,
                log_std: 0.5,
            },
        ];
        for message in &v2_only {
            let body = &message.to_bytes()[4..];
            let err = Message::decode_body(body, PROTOCOL_V1).unwrap_err();
            assert_eq!(
                err,
                WireError::KindAboveVersion { version: PROTOCOL_V1, kind: message.kind() },
                "{message:?}"
            );
            assert_eq!(err.version(), PROTOCOL_V1);
            // The same bytes decode cleanly at v2.
            assert_eq!(&Message::decode_body(body, PROTOCOL_VERSION).unwrap(), message);
        }
        // v1 kinds decode at both versions.
        let ping = Message::Ping { id: 9 };
        for v in [PROTOCOL_V1, PROTOCOL_VERSION] {
            assert_eq!(Message::decode_body(&ping.to_bytes()[4..], v).unwrap(), ping);
        }
        // Truncation errors carry the version they were parsed at.
        let body = &Message::Ping { id: 9 }.to_bytes()[4..];
        for v in [PROTOCOL_V1, PROTOCOL_VERSION] {
            let err = Message::decode_body(&body[..3], v).unwrap_err();
            assert_eq!(err.version(), v);
            assert!(err.to_string().contains(&format!("(v{v})")));
        }
    }

    #[test]
    fn negotiation_is_min_version_and_cap_intersection() {
        assert_eq!(negotiate(PROTOCOL_VERSION, CAPABILITIES), (PROTOCOL_VERSION, CAPABILITIES));
        assert_eq!(negotiate(1, CAPABILITIES), (1, CAPABILITIES));
        // A future v3 client negotiates down to our v2.
        assert_eq!(negotiate(3, 0xFF), (PROTOCOL_VERSION, CAPABILITIES));
        assert_eq!(negotiate(2, CAP_STATS), (2, CAP_STATS));
        assert_eq!(negotiate(2, 0), (2, 0));
    }

    #[test]
    fn bad_hello_and_bad_bools_are_malformed() {
        let hello = Message::Hello { id: 1, version: 1, capabilities: 0 };
        let mut body = hello.to_bytes()[4..].to_vec();
        // Patch the version byte (kind + id = 9 bytes in) to zero.
        body[9] = 0;
        assert!(matches!(
            Message::decode_body(&body, PROTOCOL_VERSION),
            Err(WireError::Malformed { .. })
        ));

        let drift = Message::DriftStatus { id: 1, retrain_in_flight: false, templates: vec![] };
        let mut body = drift.to_bytes()[4..].to_vec();
        body[9] = 7; // retrain_in_flight must be 0|1
        assert!(matches!(
            Message::decode_body(&body, PROTOCOL_VERSION),
            Err(WireError::Malformed { .. })
        ));
    }

    /// The sparse histogram encoding is canonical: a zero bucket count
    /// under a set mask bit must be rejected, not silently accepted.
    #[test]
    fn non_canonical_histogram_encoding_is_malformed() {
        let mut buckets = [0u64; 64];
        buckets[5] = 9;
        let snap = Message::MetricsSnapshot {
            id: 1,
            uptime_ns: 100,
            scalars: vec![],
            histograms: vec![HistogramMetric { id: 20, sum: 300, max: 40, buckets }],
        };
        let mut body = snap.to_bytes()[4..].to_vec();
        // The single bucket count is the last 8 bytes of the body.
        let tail = body.len() - 8;
        body[tail..].copy_from_slice(&0u64.to_le_bytes());
        let err = Message::decode_body(&body, PROTOCOL_VERSION).unwrap_err();
        assert!(matches!(err, WireError::Malformed { .. }), "{err}");
        assert!(err.to_string().contains("non-canonical"));
        // A bad scalar kind byte (not 0|1) is also malformed.
        let scalar = Message::MetricsSnapshot {
            id: 1,
            uptime_ns: 100,
            scalars: vec![ScalarMetric { id: 0, gauge: false, value: 1 }],
            histograms: vec![],
        };
        let mut body = scalar.to_bytes()[4..].to_vec();
        // kind(1) + id(8) + uptime(8) + count(2) + metric id(2) = offset 21.
        body[21] = 2;
        assert!(matches!(
            Message::decode_body(&body, PROTOCOL_VERSION),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        bytes.put_u8(4);
        let err = Message::decode_prefix(&bytes, PROTOCOL_VERSION).unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }));
        let mut reader: &[u8] = &bytes;
        assert!(read_message(&mut reader, PROTOCOL_VERSION).is_err());
    }

    #[test]
    fn torn_streams_error_but_clean_eof_does_not() {
        // Empty stream: clean EOF.
        let mut reader: &[u8] = &[];
        assert_eq!(read_message(&mut reader, PROTOCOL_VERSION).unwrap(), None);
        // EOF inside the length prefix: torn frame, not a disconnect.
        let frame_bytes = Message::Ping { id: 1 }.to_bytes();
        for cut in 1..4 {
            let mut torn: &[u8] = &frame_bytes[..cut];
            let err = read_message(&mut torn, PROTOCOL_VERSION).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
        // EOF inside the body: also a torn frame.
        for cut in 4..frame_bytes.len() {
            let mut torn: &[u8] = &frame_bytes[..cut];
            let err = read_message(&mut torn, PROTOCOL_VERSION).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let mut stream = Vec::new();
        for message in sample_messages() {
            write_message(&mut stream, &message).unwrap();
        }
        let mut reader: &[u8] = &stream;
        for message in sample_messages() {
            assert_eq!(read_message(&mut reader, PROTOCOL_VERSION).unwrap(), Some(message));
        }
        assert_eq!(read_message(&mut reader, PROTOCOL_VERSION).unwrap(), None, "clean EOF");
    }

    fn arb_query(rng: &mut SmallRng) -> Query {
        let tables: Vec<TableId> =
            (0..rng.gen_range(0..4usize)).map(|_| TableId(rng.gen_range(0u16..8))).collect();
        let joins: Vec<JoinId> =
            (0..rng.gen_range(0..3usize)).map(|_| JoinId(rng.gen_range(0u16..6))).collect();
        let predicates = (0..rng.gen_range(0..5usize))
            .map(|_| Predicate {
                table: TableId(rng.gen_range(0u16..8)),
                column: rng.gen_range(0usize..4),
                op: CmpOp::ALL[rng.gen_range(0..CmpOp::ALL.len())],
                value: rng.gen_range(-500i64..500),
            })
            .collect();
        Query::new(tables, joins, predicates)
    }

    fn arb_string(rng: &mut SmallRng) -> String {
        (0..rng.gen_range(0..64usize)).map(|_| rng.gen_range(b' '..=b'~') as char).collect()
    }

    fn arb_template_stats(rng: &mut SmallRng) -> Vec<TemplateStat> {
        (0..rng.gen_range(0..8usize))
            .map(|_| TemplateStat {
                template: rng.gen_range(0u32..=u32::MAX),
                count: rng.gen_range(0u64..=u64::MAX),
                mean_qerror: rng.gen_range(1.0f64..1e12),
            })
            .collect()
    }

    fn arb_template_drifts(rng: &mut SmallRng) -> Vec<TemplateDrift> {
        (0..rng.gen_range(0..8usize))
            .map(|_| TemplateDrift {
                template: rng.gen_range(0u32..=u32::MAX),
                window_len: rng.gen_range(0u32..10_000),
                rolling_qerror: rng.gen_range(1.0f64..1e12),
                tripped: rng.gen_bool(0.5),
            })
            .collect()
    }

    fn arb_scalar_metrics(rng: &mut SmallRng) -> Vec<ScalarMetric> {
        (0..rng.gen_range(0..24usize))
            .map(|_| ScalarMetric {
                id: rng.gen_range(0u16..=u16::MAX),
                gauge: rng.gen_bool(0.5),
                value: rng.gen_range(0u64..=u64::MAX),
            })
            .collect()
    }

    fn arb_histogram_metrics(rng: &mut SmallRng) -> Vec<HistogramMetric> {
        (0..rng.gen_range(0..12usize))
            .map(|_| {
                let mut buckets = [0u64; 64];
                for bucket in buckets.iter_mut() {
                    // ~25% of buckets populated; zero buckets stay off
                    // the wire, which is exactly the canonical form.
                    if rng.gen_bool(0.25) {
                        *bucket = rng.gen_range(1u64..=u64::MAX);
                    }
                }
                HistogramMetric {
                    id: rng.gen_range(0u16..=u16::MAX),
                    sum: rng.gen_range(0u64..=u64::MAX),
                    max: rng.gen_range(0u64..=u64::MAX),
                    buckets,
                }
            })
            .collect()
    }

    /// Generator covering every arm of the v2 protocol: `arm` picks the
    /// variant (so all 16 are exercised no matter what the RNG draws),
    /// `rng` fills in the fields.
    fn arb_message(arm: usize, rng: &mut SmallRng) -> Message {
        let id = rng.gen_range(0u64..=u64::MAX);
        match arm {
            0 => Message::EstimateRequest { id, query: arb_query(rng) },
            1 => Message::EstimateResponse {
                id,
                estimate: rng.gen_range(0u64..1 << 52) as f64,
                model_version: rng.gen_range(0u32..=u32::MAX),
                micro_batch: rng.gen_range(0u32..65),
                cache_hit: rng.gen_bool(0.5),
            },
            2 => Message::Error { id, message: arb_string(rng) },
            3 => Message::Ping { id },
            4 => Message::Pong { id },
            5 => Message::Hello {
                id,
                version: rng.gen_range(1u8..=u8::MAX),
                capabilities: rng.gen_range(0u8..=u8::MAX),
            },
            6 => Message::HelloAck {
                id,
                version: rng.gen_range(1u8..=u8::MAX),
                capabilities: rng.gen_range(0u8..=u8::MAX),
            },
            7 => Message::Feedback {
                id,
                query: arb_query(rng),
                actual_card: rng.gen_range(0u64..=u64::MAX),
            },
            8 => Message::FeedbackAck { id, model_version: rng.gen_range(0u32..=u32::MAX) },
            9 => Message::StatsRequest { id },
            10 => Message::Stats {
                id,
                model_version: rng.gen_range(0u32..=u32::MAX),
                retrains: rng.gen_range(0u32..=u32::MAX),
                feedback_count: rng.gen_range(0u64..=u64::MAX),
                templates: arb_template_stats(rng),
            },
            11 => Message::DriftStatusRequest { id },
            12 => Message::DriftStatus {
                id,
                retrain_in_flight: rng.gen_bool(0.5),
                templates: arb_template_drifts(rng),
            },
            13 => Message::MetricsRequest { id },
            14 => Message::MetricsSnapshot {
                id,
                uptime_ns: rng.gen_range(0u64..=u64::MAX),
                scalars: arb_scalar_metrics(rng),
                histograms: arb_histogram_metrics(rng),
            },
            15 => Message::Busy { id, retry_after_ms: rng.gen_range(0u32..=u32::MAX) },
            16 => Message::EstimateDetail {
                id,
                estimate: rng.gen_range(0u64..1 << 52) as f64,
                model_version: rng.gen_range(0u32..=u32::MAX),
                micro_batch: rng.gen_range(0u32..65),
                cache_hit: rng.gen_bool(0.5),
                tier: rng.gen_range(0u8..=u8::MAX),
                log_std: rng.gen_range(-16i32..=16) as f64 / 4.0,
            },
            _ => unreachable!("arm out of range"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// Arbitrary messages of every arm survive an encode → decode
        /// round trip byte-exactly, and every strict prefix of the frame
        /// is "incomplete", never an error or a wrong parse.
        #[test]
        fn every_arm_roundtrips(arm in 0usize..17, seed in 0u64..u64::MAX) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let message = arb_message(arm, &mut rng);
            let bytes = message.to_bytes();
            let (back, consumed) = Message::decode_prefix(&bytes, PROTOCOL_VERSION)
                .expect("decode")
                .expect("complete");
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(&back, &message);
            // Version gating is total: v1 decodes v1 kinds identically
            // and refuses v2 kinds with the dedicated error.
            let body = &bytes[4..];
            if message.min_version() == PROTOCOL_V1 {
                prop_assert_eq!(&Message::decode_body(body, PROTOCOL_V1).unwrap(), &message);
            } else {
                prop_assert_eq!(
                    Message::decode_body(body, PROTOCOL_V1).unwrap_err(),
                    WireError::KindAboveVersion { version: PROTOCOL_V1, kind: message.kind() }
                );
            }
        }
    }
}
