//! The length-prefixed binary wire protocol.
//!
//! Every message is one *frame*: a `u32` little-endian body length
//! followed by the body; the body's first byte is the message kind tag.
//! The layout discipline follows `lc_core::serialize` — explicit
//! little-endian fields via the `bytes` accessors, no self-describing
//! format — so the protocol stays auditable byte by byte:
//!
//! ```text
//! frame     := u32 body_len | body            (body_len ≤ MAX_FRAME_LEN)
//! body      := u8 kind | payload
//! request   := kind 1 | u64 id | canonical query encoding
//! response  := kind 2 | u64 id | f64 estimate | u32 model_version
//!                     | u32 micro_batch | u8 flags      (bit 0: cache hit)
//! error     := kind 3 | u64 id | u32 len | utf-8 message
//! ping      := kind 4 | u64 id
//! pong      := kind 5 | u64 id
//! ```
//!
//! The request `id` is an opaque client token echoed back in the matching
//! response, so a client may pipeline requests on one connection.
//! Decoding is strict: every read is bounds-checked, a body must be
//! consumed exactly, and malformed input yields [`WireError`] — never a
//! panic, since these bytes arrive from the network.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut};
use lc_query::Query;

/// Upper bound on a frame body, bounding per-connection buffer growth. A
/// maximal query (hundreds of predicates) encodes to a few KiB; 1 MiB
/// leaves two orders of magnitude of headroom.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Error produced by frame decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Response metadata flag: the estimate was answered from the cache.
const FLAG_CACHE_HIT: u8 = 1;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: estimate the cardinality of `query`.
    EstimateRequest {
        /// Client-chosen token echoed back in the response.
        id: u64,
        /// The query to estimate.
        query: Query,
    },
    /// Server → client: the estimate plus serving metadata.
    EstimateResponse {
        /// Token of the request this answers.
        id: u64,
        /// Estimated cardinality in rows (≥ 1).
        estimate: f64,
        /// Version of the model snapshot that produced the estimate (0
        /// for cache hits recorded under an older key layout — in
        /// practice always the producing version).
        model_version: u32,
        /// Size of the coalesced micro-batch this request rode in (0 for
        /// cache hits, which skip inference).
        micro_batch: u32,
        /// True if the estimate came from the cache.
        cache_hit: bool,
    },
    /// Server → client: the request could not be served.
    Error {
        /// Token of the offending request, 0 if it could not be decoded.
        id: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Liveness probe.
    Ping {
        /// Echo token.
        id: u64,
    },
    /// Liveness reply.
    Pong {
        /// Echo token.
        id: u64,
    },
}

fn need(buf: &[u8], n: usize, what: &str) -> Result<(), WireError> {
    if buf.remaining() < n {
        return Err(WireError(format!(
            "truncated {what}: need {n} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

impl Frame {
    /// Append the full frame (length prefix + body) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.put_u32_le(0); // patched below
        match self {
            Frame::EstimateRequest { id, query } => {
                buf.put_u8(1);
                buf.put_u64_le(*id);
                query.encode(buf);
            }
            Frame::EstimateResponse { id, estimate, model_version, micro_batch, cache_hit } => {
                buf.put_u8(2);
                buf.put_u64_le(*id);
                buf.put_f64_le(*estimate);
                buf.put_u32_le(*model_version);
                buf.put_u32_le(*micro_batch);
                buf.put_u8(if *cache_hit { FLAG_CACHE_HIT } else { 0 });
            }
            Frame::Error { id, message } => {
                buf.put_u8(3);
                buf.put_u64_le(*id);
                let bytes = message.as_bytes();
                buf.put_u32_le(bytes.len() as u32);
                buf.put_slice(bytes);
            }
            Frame::Ping { id } => {
                buf.put_u8(4);
                buf.put_u64_le(*id);
            }
            Frame::Pong { id } => {
                buf.put_u8(5);
                buf.put_u64_le(*id);
            }
        }
        let body_len = (buf.len() - start - 4) as u32;
        buf[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// The encoded frame as an owned buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode(&mut buf);
        buf
    }

    /// Decode one frame *body* (everything after the length prefix).
    /// Strict: the body must be consumed exactly; trailing bytes are a
    /// protocol violation.
    pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        let mut buf = body;
        need(buf, 1, "kind tag")?;
        let kind = buf.get_u8();
        need(buf, 8, "message id")?;
        let id = buf.get_u64_le();
        let frame = match kind {
            1 => {
                let query =
                    Query::decode(&mut buf).map_err(|e| WireError(format!("request: {}", e.0)))?;
                Frame::EstimateRequest { id, query }
            }
            2 => {
                need(buf, 8 + 4 + 4 + 1, "response payload")?;
                let estimate = buf.get_f64_le();
                let model_version = buf.get_u32_le();
                let micro_batch = buf.get_u32_le();
                let flags = buf.get_u8();
                if flags & !FLAG_CACHE_HIT != 0 {
                    return Err(WireError(format!("unknown response flags {flags:#04x}")));
                }
                Frame::EstimateResponse {
                    id,
                    estimate,
                    model_version,
                    micro_batch,
                    cache_hit: flags & FLAG_CACHE_HIT != 0,
                }
            }
            3 => {
                need(buf, 4, "error length")?;
                let len = buf.get_u32_le() as usize;
                need(buf, len, "error message")?;
                let message = String::from_utf8(buf.take_bytes(len).to_vec())
                    .map_err(|_| WireError("error message is not UTF-8".into()))?;
                Frame::Error { id, message }
            }
            4 => Frame::Ping { id },
            5 => Frame::Pong { id },
            t => return Err(WireError(format!("unknown frame kind {t}"))),
        };
        if !buf.is_empty() {
            return Err(WireError(format!("{} trailing bytes after frame body", buf.len())));
        }
        Ok(frame)
    }

    /// Try to decode one full frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` holds only an incomplete frame (read
    /// more bytes and retry), `Ok(Some((frame, consumed)))` on success,
    /// and `Err` on a malformed frame.
    pub fn decode_prefix(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_FRAME_LEN {
            return Err(WireError(format!("frame body of {body_len} bytes exceeds MAX_FRAME_LEN")));
        }
        if buf.len() < 4 + body_len {
            return Ok(None);
        }
        let frame = Frame::decode_body(&buf[4..4 + body_len])?;
        Ok(Some((frame, 4 + body_len)))
    }
}

/// Read one frame from a blocking stream. Returns `Ok(None)` only on a
/// *clean* EOF — the peer closed exactly on a frame boundary. An EOF
/// inside the length prefix or the body is a torn frame and surfaces as
/// [`io::ErrorKind::InvalidData`], like every other wire error.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    WireError(format!("connection closed mid length prefix ({filled}/4 bytes)")),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let body_len = u32::from_le_bytes(len_bytes) as usize;
    if body_len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError(format!("frame body of {body_len} bytes exceeds MAX_FRAME_LEN")),
        ));
    }
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::InvalidData,
                WireError(format!("connection closed mid frame body ({body_len} bytes expected)")),
            )
        } else {
            e
        }
    })?;
    let frame =
        Frame::decode_body(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Some(frame))
}

/// Write one frame to a blocking stream (the caller flushes).
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> io::Result<()> {
    writer.write_all(&frame.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_engine::{CmpOp, JoinId, Predicate, TableId};
    use proptest::prelude::*;

    fn sample_query() -> Query {
        Query::new(
            vec![TableId(0), TableId(2)],
            vec![JoinId(1)],
            vec![
                Predicate { table: TableId(0), column: 2, op: CmpOp::Gt, value: 1995 },
                Predicate { table: TableId(2), column: 1, op: CmpOp::Eq, value: -3 },
            ],
        )
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::EstimateRequest { id: 7, query: sample_query() },
            Frame::EstimateRequest { id: u64::MAX, query: Query::new(vec![], vec![], vec![]) },
            Frame::EstimateResponse {
                id: 9,
                estimate: 12345.75,
                model_version: 3,
                micro_batch: 64,
                cache_hit: true,
            },
            Frame::Error { id: 0, message: "no such model".into() },
            Frame::Error { id: 1, message: String::new() },
            Frame::Ping { id: 42 },
            Frame::Pong { id: 42 },
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        for frame in sample_frames() {
            let bytes = frame.to_bytes();
            let (back, consumed) = Frame::decode_prefix(&bytes).expect("decode").expect("complete");
            assert_eq!(back, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn decode_prefix_handles_partial_and_concatenated_frames() {
        let a = Frame::Ping { id: 1 }.to_bytes();
        let b = Frame::EstimateRequest { id: 2, query: sample_query() }.to_bytes();
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        // Concatenated: first decode consumes exactly `a`, second exactly `b`.
        let (f1, c1) = Frame::decode_prefix(&stream).unwrap().unwrap();
        assert_eq!(f1, Frame::Ping { id: 1 });
        assert_eq!(c1, a.len());
        let (f2, c2) = Frame::decode_prefix(&stream[c1..]).unwrap().unwrap();
        assert_eq!(c2, b.len());
        assert!(matches!(f2, Frame::EstimateRequest { id: 2, .. }));
        // Partial: any prefix of one frame is incomplete, not an error.
        for cut in 0..b.len() {
            assert_eq!(Frame::decode_prefix(&b[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn every_truncation_of_every_body_errors() {
        for frame in sample_frames() {
            let bytes = frame.to_bytes();
            let body = &bytes[4..];
            for cut in 0..body.len() {
                assert!(
                    Frame::decode_body(&body[..cut]).is_err(),
                    "{frame:?}: body truncated at {cut}/{} decoded successfully",
                    body.len()
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_and_bad_tags_error() {
        let mut body = Frame::Ping { id: 3 }.to_bytes()[4..].to_vec();
        body.push(0xAB);
        assert!(Frame::decode_body(&body).unwrap_err().0.contains("trailing"));

        let mut bad_kind = Frame::Ping { id: 3 }.to_bytes()[4..].to_vec();
        bad_kind[0] = 99;
        assert!(Frame::decode_body(&bad_kind).unwrap_err().0.contains("unknown frame kind"));

        let resp = Frame::EstimateResponse {
            id: 1,
            estimate: 2.0,
            model_version: 1,
            micro_batch: 1,
            cache_hit: false,
        };
        let mut bad_flags = resp.to_bytes()[4..].to_vec();
        let last = bad_flags.len() - 1;
        bad_flags[last] = 0xF0;
        assert!(Frame::decode_body(&bad_flags).unwrap_err().0.contains("flags"));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        bytes.put_u8(4);
        assert!(Frame::decode_prefix(&bytes).is_err());
        let mut reader: &[u8] = &bytes;
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn torn_streams_error_but_clean_eof_does_not() {
        // Empty stream: clean EOF.
        let mut reader: &[u8] = &[];
        assert_eq!(read_frame(&mut reader).unwrap(), None);
        // EOF inside the length prefix: torn frame, not a disconnect.
        let frame_bytes = Frame::Ping { id: 1 }.to_bytes();
        for cut in 1..4 {
            let mut torn: &[u8] = &frame_bytes[..cut];
            let err = read_frame(&mut torn).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
        // EOF inside the body: also a torn frame.
        for cut in 4..frame_bytes.len() {
            let mut torn: &[u8] = &frame_bytes[..cut];
            let err = read_frame(&mut torn).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let mut stream = Vec::new();
        for frame in sample_frames() {
            write_frame(&mut stream, &frame).unwrap();
        }
        let mut reader: &[u8] = &stream;
        for frame in sample_frames() {
            assert_eq!(read_frame(&mut reader).unwrap(), Some(frame));
        }
        assert_eq!(read_frame(&mut reader).unwrap(), None, "clean EOF");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// Arbitrary request/response frames survive an encode → decode
        /// round trip byte-exactly.
        #[test]
        fn request_response_roundtrip(
            id in 0u64..u64::MAX,
            tables in proptest::collection::btree_set(0u16..8, 0..4),
            joins in proptest::collection::btree_set(0u16..6, 0..3),
            preds in proptest::collection::vec((0u16..8, 0usize..4, 0usize..3, -500i64..500), 0..5),
            estimate in 0u64..1 << 52,
            version in 0u32..1000,
            batch in 0u32..65,
            hit in 0usize..2,
        ) {
            let query = Query::new(
                tables.into_iter().map(TableId).collect(),
                joins.into_iter().map(JoinId).collect(),
                preds
                    .into_iter()
                    .map(|(t, c, op, v)| Predicate {
                        table: TableId(t),
                        column: c,
                        op: CmpOp::ALL[op],
                        value: v,
                    })
                    .collect(),
            );
            let req = Frame::EstimateRequest { id, query };
            let resp = Frame::EstimateResponse {
                id,
                estimate: estimate as f64,
                model_version: version,
                micro_batch: batch,
                cache_hit: hit == 1,
            };
            for frame in [req, resp] {
                let bytes = frame.to_bytes();
                let (back, consumed) =
                    Frame::decode_prefix(&bytes).expect("decode").expect("complete");
                prop_assert_eq!(consumed, bytes.len());
                prop_assert_eq!(back, frame);
            }
        }
    }
}
