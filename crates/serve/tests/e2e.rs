//! End-to-end: real TCP server + the load generator + a hot-swap while
//! traffic is in flight, plus the drift-driven self-healing loop over
//! real sockets.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lc_core::{train, FeatureMode, TrainConfig};
use lc_engine::SampleSet;
use lc_imdb::ImdbConfig;
use lc_query::workloads;
use lc_serve::{serve, DriftConfig, EstimationService, LoadgenConfig, ModelRegistry, ServeConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Must match the sample size the load-generated queries are annotated
/// with server-side (the server owns the samples; 64 mirrors the bins).
const SAMPLE_SIZE: usize = 64;

fn boot(
    config: ServeConfig,
) -> (Arc<EstimationService>, Arc<ModelRegistry>, lc_core::MscnEstimator) {
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(17);
    let samples = SampleSet::draw(&db, SAMPLE_SIZE, &mut rng);
    let data = workloads::synthetic(&db, &samples, 150, 2, 19).queries;
    let cfg =
        TrainConfig { epochs: 2, hidden: 16, mode: FeatureMode::Bitmaps, ..TrainConfig::default() };
    let v1 = train(&db, SAMPLE_SIZE, &data, cfg).estimator;
    let v2 = train(&db, SAMPLE_SIZE, &data, TrainConfig { seed: 4242, ..cfg }).estimator;
    let registry = Arc::new(ModelRegistry::new(v1));
    let service = Arc::new(EstimationService::new(db, samples, Arc::clone(&registry), config));
    (service, registry, v2)
}

#[test]
fn loadgen_against_live_server_reports_throughput_across_a_hot_swap() {
    let (service, registry, v2) = boot(ServeConfig::default());
    let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = handle.local_addr().to_string();

    let config = LoadgenConfig {
        addr,
        connections: 4,
        requests: 300,
        max_joins: 2,
        seed: 7,
        connect_timeout: Duration::from_secs(5),
        ..LoadgenConfig::default()
    };
    let report = std::thread::scope(|s| {
        let loadgen = s.spawn(|| lc_serve::loadgen::run(&config).expect("loadgen run"));
        // Hot-swap the model while the load generator is mid-run. If the
        // run finishes first the swap still must not disturb anything.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(registry.publish(v2), 2);
        loadgen.join().expect("loadgen thread panicked")
    });

    assert_eq!(report.requests, 300, "every request must be answered");
    assert_eq!(report.errors, 0, "no request may fail, hot-swap included");
    assert!(report.qps > 0.0, "QPS report must be non-zero");
    assert!(report.seconds > 0.0);
    assert!(report.p50_us > 0.0 && report.p99_us >= report.p50_us);

    // The server actually exercised the serving stack. Micro-batching
    // happens in the reactor shards' own batchers (not the service's),
    // so it shows in the process-global batch-size histogram.
    if lc_obs::enabled() {
        let batches = lc_obs::metrics::BATCH_SIZE.snapshot().count();
        assert!(batches >= 1, "TCP traffic never reached a micro-batcher");
    }
    let cache = service.cache_stats();
    assert_eq!(cache.hits + cache.misses, 300, "every request probed the cache");

    handle.shutdown();
    service.shutdown();
}

/// The self-healing loop over real sockets: shifted loadgen traffic
/// trips the drift monitor, the server retrains incrementally in the
/// background and publishes a strictly newer model — while every single
/// request keeps being answered.
#[test]
fn shifted_loadgen_trips_drift_and_server_republishes_mid_traffic() {
    // Hair-trigger drift thresholds so the retrain fires well within the
    // (debug-build) test budget; the retrain itself is kept short.
    let drift = DriftConfig {
        window: 16,
        min_samples: 4,
        qerror_threshold: 1.5,
        min_corpus: 16,
        retrain: TrainConfig { epochs: 3, batch_size: 64, ..TrainConfig::default() },
        ..DriftConfig::default()
    };
    let (service, registry, _) = boot(ServeConfig { drift, ..ServeConfig::default() });
    let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = handle.local_addr().to_string();

    let config = LoadgenConfig {
        addr,
        connections: 2,
        requests: 240,
        max_joins: 2,
        seed: 11,
        connect_timeout: Duration::from_secs(5),
        shift: true,
        shift_at: 0.3,
        shift_joins: 3,
        ..LoadgenConfig::default()
    };
    let report = lc_serve::loadgen::run(&config).expect("loadgen run");
    assert_eq!(report.requests, 240, "every request must be answered");
    assert_eq!(report.errors, 0, "feedback traffic must not produce errors");
    let shift = report.shift.expect("shift mode must produce a shift report");
    assert!(shift.feedback_count >= 240, "server recorded every feedback frame");
    assert_eq!(shift.version_regressions, 0, "published versions are monotonic");

    // The retrain runs in the background; it may still be in flight when
    // the load generator finishes, so wait on the in-process handle.
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.drift().retrains() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(service.drift().retrains() >= 1, "shifted traffic never triggered a retrain");
    assert!(
        registry.active_version() >= 2,
        "retrain did not publish (active v{})",
        registry.active_version()
    );

    handle.shutdown();
    service.shutdown();
}

/// Open-loop mode against a live server: many mostly-idle connections,
/// fixed-rate injection. With the default admission budget the rate is
/// comfortably sustainable, so every request must be answered — no
/// errors and no sheds — while the connection count exceeds anything
/// the closed-loop tests open.
#[test]
fn open_loop_holds_idle_connections_and_answers_at_a_fixed_rate() {
    let (service, _registry, _) = boot(ServeConfig::default());
    let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = handle.local_addr().to_string();

    let config = LoadgenConfig {
        addr,
        connections: 64,
        requests: 256,
        open_loop: true,
        qps: 4000,
        burst: 16,
        seed: 23,
        connect_timeout: Duration::from_secs(5),
        ..LoadgenConfig::default()
    };
    let report = lc_serve::loadgen::run(&config).expect("open-loop run");
    assert_eq!(report.requests, 256, "sustainable rate: every request answered");
    assert_eq!(report.errors, 0, "idle connections must not produce errors");
    assert_eq!(report.shed, 0, "default budget must not shed at this rate");
    assert!(report.qps > 0.0 && report.p99_us >= report.p50_us);

    handle.shutdown();
    service.shutdown();
}

#[test]
fn loadgen_reports_connection_failure_when_no_server_listens() {
    let config = LoadgenConfig {
        addr: "127.0.0.1:1".into(),
        connections: 1,
        requests: 1,
        connect_timeout: Duration::from_millis(100),
        ..LoadgenConfig::default()
    };
    assert!(lc_serve::loadgen::run(&config).is_err());
}
