//! The memory claim behind the sharded front: an idle connection costs
//! a slot entry and two small buffers, not a thread stack. This test
//! opens ~10k idle connections against a live server in-process and
//! asserts the resident-set growth stays under 100 KB per thousand
//! connections — roughly 100× below the ~8 MB-stack-per-connection
//! budget of the old thread-per-connection front.
//!
//! Ignored by default: it opens tens of thousands of file descriptors
//! and takes seconds. The CI `overload-smoke` job (and anyone debugging
//! connection memory) runs it explicitly:
//!
//! ```text
//! cargo test -p lc-serve --release --test idle_mass -- --ignored
//! ```

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use lc_core::{train, FeatureMode, TrainConfig};
use lc_engine::SampleSet;
use lc_imdb::ImdbConfig;
use lc_query::workloads;
use lc_serve::wire::{read_message, write_message, Message, PROTOCOL_VERSION};
use lc_serve::{serve, EstimationService, ModelRegistry, ServeConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Resident set size of this process in KB, from `/proc/self/statm`
/// (field 2 is resident pages).
fn rss_kb() -> u64 {
    let statm = std::fs::read_to_string("/proc/self/statm").expect("read /proc/self/statm");
    let pages: u64 =
        statm.split_whitespace().nth(1).expect("statm resident field").parse().expect("parse rss");
    let page_kb = 4; // x86_64/aarch64 Linux base pages
    pages * page_kb
}

/// One request/response round trip, used to force the server to fully
/// process a connection (accept, register, allocate its slot).
fn ping(stream: &TcpStream, id: u64) {
    write_message(&mut BufWriter::new(stream), &Message::Ping { id }).expect("write ping");
    match read_message(&mut BufReader::new(stream), PROTOCOL_VERSION).expect("read pong") {
        Some(Message::Pong { id: rid }) if rid == id => {}
        other => panic!("expected Pong, got {other:?}"),
    }
}

#[test]
#[ignore = "opens ~20k file descriptors; run explicitly (see module docs)"]
fn ten_thousand_idle_connections_fit_the_rss_budget() {
    // Both endpoints of every connection live in this process, so each
    // costs two descriptors plus slack for the test harness itself.
    let limit = lc_poll::raise_nofile_limit(65_536);
    let target = (limit.saturating_sub(512) / 2).min(10_000) as usize;
    assert!(target >= 2_000, "fd limit {limit} too low for a meaningful measurement");

    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(5);
    let samples = SampleSet::draw(&db, 64, &mut rng);
    let data = workloads::synthetic(&db, &samples, 60, 2, 3).queries;
    let cfg =
        TrainConfig { epochs: 1, hidden: 8, mode: FeatureMode::Bitmaps, ..TrainConfig::default() };
    let estimator = train(&db, 64, &data, cfg).estimator;
    let registry = Arc::new(ModelRegistry::new(estimator));
    let service = Arc::new(EstimationService::new(db, samples, registry, ServeConfig::default()));
    let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = handle.local_addr();

    // Warm up allocator arenas and the server's slot table reuse paths
    // before taking the baseline, so the measurement isolates per-
    // connection cost instead of one-time laziness.
    {
        let warmup: Vec<TcpStream> =
            (0..64).map(|_| TcpStream::connect(addr).expect("warmup connect")).collect();
        for (i, stream) in warmup.iter().enumerate() {
            ping(stream, i as u64);
        }
    }
    std::thread::sleep(Duration::from_millis(100));
    let baseline_kb = rss_kb();

    let mut idle = Vec::with_capacity(target);
    for _ in 0..target {
        idle.push(TcpStream::connect(addr).expect("idle connect"));
    }
    // One round trip per connection proves every one of them was
    // accepted, registered with the poller, and given a slot — an
    // unaccepted backlog connection would cost the server nothing and
    // fake the result.
    for (i, stream) in idle.iter().enumerate() {
        ping(stream, i as u64);
    }
    let grown_kb = rss_kb().saturating_sub(baseline_kb);

    // < 100 KB per thousand connections, i.e. ~100 bytes per idle
    // connection across both endpoints — versus ~8 MB of stack each
    // under the old thread-per-connection front.
    let budget_kb = 100 * (target as u64).div_ceil(1_000);
    assert!(
        grown_kb < budget_kb,
        "{target} idle connections grew RSS by {grown_kb} KB (budget {budget_kb} KB)"
    );

    // The idle mass must not have degraded the serving path: a fresh
    // request still round-trips.
    let probe = TcpStream::connect(addr).expect("probe connect");
    ping(&probe, 999_999);

    drop(idle);
    handle.shutdown();
    service.shutdown();
}
