//! Live-server metrics consistency: drive a real TCP server with a known
//! traffic mix, fetch a `MetricsSnapshot` over the wire, and check the
//! counters add up.
//!
//! ONE `#[test]` only: the `lc_obs` catalog is process-global, so a
//! second test in this binary would race its counter assertions.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use lc_core::{train, TrainConfig};
use lc_engine::SampleSet;
use lc_imdb::{generate, ImdbConfig};
use lc_obs::{metric_name, MetricKind, CATALOG};
use lc_query::workloads;
use lc_serve::wire::{read_message, write_message, CAPABILITIES, CAP_METRICS};
use lc_serve::{serve, EstimationService, Message, ModelRegistry, ServeConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Look up a snapshot scalar by catalog name.
fn scalar(scalars: &[lc_serve::ScalarMetric], name: &str) -> u64 {
    let id = CATALOG.iter().position(|def| def.name == name).expect("metric in catalog") as u16;
    scalars.iter().find(|s| s.id == id).map(|s| s.value).unwrap_or_else(|| {
        panic!("scalar {name} (id {id}) missing from snapshot");
    })
}

/// Look up a snapshot histogram by catalog name.
fn histogram<'a>(
    histograms: &'a [lc_serve::HistogramMetric],
    name: &str,
) -> &'a lc_serve::HistogramMetric {
    let id = CATALOG.iter().position(|def| def.name == name).expect("metric in catalog") as u16;
    histograms
        .iter()
        .find(|h| h.id == id)
        .unwrap_or_else(|| panic!("histogram {name} (id {id}) missing from snapshot"))
}

#[test]
fn snapshot_counters_are_consistent_over_a_live_server() {
    const DISTINCT: usize = 24;
    const GARBAGE_CONNECTIONS: u64 = 3;
    let version = lc_serve::wire::PROTOCOL_VERSION;

    let db = generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(13);
    let samples = SampleSet::draw(&db, 24, &mut rng);
    let data = workloads::synthetic(&db, &samples, 120, 2, 91).queries;
    let cfg = TrainConfig { epochs: 2, hidden: 16, ..TrainConfig::default() };
    let est = train(&db, 24, &data, cfg).estimator;
    let registry = Arc::new(ModelRegistry::new(est));
    let service = Arc::new(EstimationService::new(db, samples, registry, ServeConfig::default()));
    let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = handle.local_addr();

    // One negotiated v2 connection carries all the well-formed traffic.
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    write_message(&mut writer, &Message::Hello { id: 0, version, capabilities: CAPABILITIES })
        .unwrap();
    writer.flush().unwrap();
    match read_message(&mut reader, version).unwrap() {
        Some(Message::HelloAck { capabilities, .. }) => {
            assert_ne!(capabilities & CAP_METRICS, 0, "server must grant CAP_METRICS");
        }
        other => panic!("expected HelloAck, got {other:?}"),
    }

    // Each distinct query twice, closed-loop: first probe misses the
    // cache, the repeat hits it.
    for (i, labeled) in data.iter().take(DISTINCT).enumerate() {
        for pass in 0..2u64 {
            let id = (i as u64) * 2 + pass;
            write_message(
                &mut writer,
                &Message::EstimateRequest { id, query: labeled.query.clone() },
            )
            .unwrap();
            writer.flush().unwrap();
            // This connection negotiated CAP_TIER, so estimates come
            // back as tier-attributed detail frames.
            match read_message(&mut reader, version).unwrap() {
                Some(Message::EstimateDetail { id: rid, estimate, cache_hit, tier, .. }) => {
                    assert_eq!(rid, id);
                    assert!(estimate >= 1.0);
                    assert_eq!(cache_hit, pass == 1, "query {i} pass {pass}");
                    assert_eq!(tier, 0, "a non-tiered pipeline answers from the primary");
                }
                other => panic!("unexpected reply: {other:?}"),
            }
        }
    }

    // Undecodable frames on their own connections: each is answered
    // with an Error frame and counted as both a wire error and an error.
    for _ in 0..GARBAGE_CONNECTIONS {
        let garbage = TcpStream::connect(addr).expect("connect");
        let mut greader = BufReader::new(garbage.try_clone().unwrap());
        let mut gwriter = BufWriter::new(garbage);
        gwriter.write_all(&16u32.to_le_bytes()).unwrap();
        gwriter.write_all(&[0u8; 16]).unwrap();
        gwriter.flush().unwrap();
        match read_message(&mut greader, version).unwrap() {
            Some(Message::Error { .. }) => {}
            other => panic!("expected Error frame, got {other:?}"),
        }
        assert_eq!(read_message(&mut greader, version).unwrap(), None, "closed after error");
    }

    // Fetch the snapshot over the same negotiated connection.
    write_message(&mut writer, &Message::MetricsRequest { id: 999 }).unwrap();
    writer.flush().unwrap();
    let (uptime_ns, scalars, histograms) = match read_message(&mut reader, version).unwrap() {
        Some(Message::MetricsSnapshot { id: 999, uptime_ns, scalars, histograms }) => {
            (uptime_ns, scalars, histograms)
        }
        other => panic!("expected MetricsSnapshot, got {other:?}"),
    };

    // Structural: the snapshot covers the whole catalog, ids resolve.
    let n_scalars = CATALOG.iter().filter(|def| def.kind() != MetricKind::Histogram).count();
    let n_histograms = CATALOG.len() - n_scalars;
    assert_eq!(scalars.len(), n_scalars, "one entry per counter/gauge");
    assert_eq!(histograms.len(), n_histograms, "one entry per histogram");
    for s in &scalars {
        assert!(metric_name(s.id).is_some(), "unknown scalar id {}", s.id);
    }
    for h in &histograms {
        assert!(metric_name(h.id).is_some(), "unknown histogram id {}", h.id);
    }
    assert!(uptime_ns > 0, "uptime must be measured");

    // Counter consistency over the exact traffic mix we produced.
    let requests = scalar(&scalars, "serve.requests");
    let hits = scalar(&scalars, "cache.hits");
    let misses = scalar(&scalars, "cache.misses");
    assert_eq!(requests, (DISTINCT as u64) * 2, "every estimate request counted");
    assert_eq!(requests, hits + misses, "every estimate request is a cache hit or miss");
    assert_eq!(hits, DISTINCT as u64, "every repeat hit the cache");
    assert_eq!(scalar(&scalars, "serve.errors"), GARBAGE_CONNECTIONS);
    assert_eq!(scalar(&scalars, "serve.wire_decode_errors"), GARBAGE_CONNECTIONS);
    assert_eq!(scalar(&scalars, "serve.connections"), 1 + GARBAGE_CONNECTIONS);
    assert_eq!(scalar(&scalars, "serve.metrics_requests"), 1);
    assert_eq!(scalar(&scalars, "registry.active_version"), 1);
    assert_eq!(scalar(&scalars, "drift.trips"), 0);
    // Tier hit counters are recorded per inference (cache hits replay
    // the stored attribution without re-counting); a non-tiered
    // pipeline answers everything from the primary.
    assert_eq!(scalar(&scalars, "tier.primary.hits"), misses);
    assert_eq!(scalar(&scalars, "tier.gbm.hits"), 0);
    assert_eq!(scalar(&scalars, "tier.fallback.hits"), 0);

    // Histogram consistency: every estimate was spanned (span clocks
    // are gated on `LC_OBS`, so skip when this run disabled them — the
    // test and the in-process server share that env), and the
    // micro-batcher forwarded exactly the cache misses — the batch-size
    // histogram's value sum counts forwarded queries.
    if lc_obs::enabled() {
        let estimate_spans = histogram(&histograms, "serve.estimate_ns");
        let spanned: u64 = estimate_spans.buckets.iter().sum();
        assert_eq!(spanned, requests, "every estimate request was timed");
    }
    let batch_sizes = histogram(&histograms, "batcher.batch_size");
    assert_eq!(batch_sizes.sum, misses, "forwarded queries == cache misses");

    handle.shutdown();
    service.shutdown();
}
