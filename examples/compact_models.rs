//! Compact models: the distillation × quantization frontier, measured.
//!
//! Trains an f32 MSCN teacher, distills students at a grid of hidden
//! widths against the teacher's soft outputs, quantizes every model to
//! int8, and evaluates all of them on a held-out workload — printing
//! model bytes next to q-error so the compression cost is a number, not
//! a guess.
//!
//! Writes the grid as `COMPACT_baseline.json` next to
//! `BENCH_baseline.json` so the compression frontier is a tracked
//! artifact, and asserts the serving acceptance gate: the int8 model at
//! the teacher's width (what `serve --quantized` deploys) keeps median
//! q-error within 1.5× of the f32 teacher.
//!
//! ```text
//! cargo run --release --example compact_models
//! ```

use lc_eval::CompactionFrontier;
use learned_cardinalities::prelude::*;

fn main() {
    let db = lc_imdb::generate(&ImdbConfig {
        num_titles: 4_000,
        num_companies: 400,
        num_persons: 3_000,
        num_keywords: 600,
        seed: 31,
    });
    let mut rng = SmallRng::seed_from_u64(9);
    let samples = SampleSet::draw(&db, 64, &mut rng);

    let training = workloads::synthetic(&db, &samples, 2_000, 2, 17).queries;
    let held_out = workloads::synthetic(&db, &samples, 400, 2, 18).queries;
    let cfg = TrainConfig { epochs: 16, hidden: 64, batch_size: 128, ..TrainConfig::default() };
    println!("training f32 teacher (hidden {}, {} queries) ...", cfg.hidden, training.len());
    let teacher = train(&db, 64, &training, cfg).estimator;

    // Students learn from the teacher's soft outputs on the training
    // stream; every point is judged on the same held-out workload.
    let widths = [8, 16, 32, 64];
    println!("distilling students at widths {widths:?} and quantizing each to int8 ...\n");
    let frontier = CompactionFrontier::measure(
        &teacher,
        &training,
        &held_out,
        &widths,
        TrainConfig { epochs: 10, ..cfg },
    );

    println!(
        "{:<10} {:>6} {:>9} {:>8} {:>8} {:>8} {:>12}",
        "model", "width", "bytes", "median", "p95", "p99", "vs teacher"
    );
    println!(
        "{:<10} {:>6} {:>9} {:>8.2} {:>8.2} {:>8.1} {:>11.2}x",
        "teacher",
        frontier.teacher_hidden,
        frontier.teacher_bytes,
        frontier.teacher.median,
        frontier.teacher.p95,
        frontier.teacher.p99,
        1.0,
    );
    for p in &frontier.points {
        println!(
            "{:<10} {:>6} {:>9} {:>8.2} {:>8.2} {:>8.1} {:>11.2}x",
            if p.quantized { "int8" } else { "f32" },
            p.hidden,
            p.bytes,
            p.stats.median,
            p.stats.p95,
            p.stats.p99,
            p.median_vs_teacher,
        );
    }

    let path = "COMPACT_baseline.json";
    std::fs::write(path, frontier.to_json() + "\n").expect("write frontier");

    // The serving acceptance gate: `serve --quantized` deploys the int8
    // model at the teacher's width, and that operating point must stay
    // within 1.5x of the teacher's median q-error while using at most a
    // third of the bytes.
    let served = frontier.point(frontier.teacher_hidden, true).expect("teacher-width int8 point");
    println!(
        "\nwrote {path}. served operating point (int8, width {}): {} bytes ({:.1}% of f32), \
         median q-error {:.2} ({:.2}x teacher)",
        served.hidden,
        served.bytes,
        100.0 * served.bytes as f64 / frontier.teacher_bytes as f64,
        served.stats.median,
        served.median_vs_teacher,
    );
    assert!(
        served.median_vs_teacher <= 1.5,
        "int8 median q-error {:.2}x the f32 teacher exceeds the 1.5x gate",
        served.median_vs_teacher,
    );
    assert!(
        served.bytes * 3 <= frontier.teacher_bytes,
        "int8 model ({} bytes) is not <= 1/3 of the f32 teacher ({} bytes)",
        served.bytes,
        frontier.teacher_bytes,
    );
}
