//! Estimator showdown: MSCN versus PostgreSQL-style statistics, Random
//! Sampling, and Index-Based Join Sampling on one workload — a miniature
//! of the paper's Table 2.
//!
//! ```text
//! cargo run --release --example estimator_showdown
//! ```

use lc_engine::JoinIndexes;
use learned_cardinalities::prelude::*;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
    let w = rank - rank.floor();
    sorted[lo] * (1.0 - w) + sorted[hi] * w
}

fn main() {
    let db = lc_imdb::generate(&ImdbConfig {
        num_titles: 6_000,
        num_companies: 500,
        num_persons: 4_000,
        num_keywords: 800,
        seed: 11,
    });
    let mut rng = SmallRng::seed_from_u64(2);
    let samples = SampleSet::draw(&db, 64, &mut rng);
    let indexes = JoinIndexes::build(&db);
    let join_sizes = FullJoinSizes::build(&db);

    let training = workloads::synthetic(&db, &samples, 3_000, 2, 1).queries;
    let evaluation = workloads::synthetic(&db, &samples, 400, 2, 2).queries;

    let cfg = TrainConfig { epochs: 30, hidden: 48, batch_size: 128, ..TrainConfig::default() };
    let trained = train(&db, 64, &training, cfg);
    eprintln!("trained MSCN in {:.1}s", trained.report.train_seconds);

    let pg = PostgresEstimator::new(&db);
    let rs = RandomSamplingEstimator::new(&db, &samples, &join_sizes);
    let ibjs = IbjsEstimator::new(&db, &samples, &indexes, &join_sizes);
    let estimators: Vec<(&str, &dyn Estimator)> = vec![
        ("PostgreSQL", &pg),
        ("Random Samp.", &rs),
        ("IB Join Samp.", &ibjs),
        ("MSCN (ours)", &trained.estimator),
    ];

    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "estimator", "median", "90th", "95th", "99th", "max", "mean"
    );
    for (name, est) in estimators {
        let mut qerrs: Vec<f64> = est
            .estimate_all(&evaluation)
            .into_iter()
            .zip(&evaluation)
            .map(|(e, q)| {
                let t = q.cardinality as f64;
                (e.max(1.0) / t).max(t / e.max(1.0))
            })
            .collect();
        qerrs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = qerrs.iter().sum::<f64>() / qerrs.len() as f64;
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.1} {:>10.0} {:>10.2}",
            name,
            percentile(&qerrs, 50.0),
            percentile(&qerrs, 90.0),
            percentile(&qerrs, 95.0),
            percentile(&qerrs, 99.0),
            qerrs.last().unwrap(),
            mean
        );
    }
    println!(
        "\nExpected shape (paper, Table 2): IBJS wins the median; MSCN wins from the 90th \
         percentile on and by orders of magnitude at max/mean."
    );
}
