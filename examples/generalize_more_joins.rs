//! Generalizing to more joins (§4.4): MSCN is trained on queries with 0–2
//! joins and then asked to estimate queries with 3 and 4 joins — set
//! combinations it has *never seen*. The set-based architecture makes this
//! possible at all; accuracy degrades gracefully and stays competitive
//! with PostgreSQL.
//!
//! ```text
//! cargo run --release --example generalize_more_joins
//! ```

use learned_cardinalities::prelude::*;

fn main() {
    let db = lc_imdb::generate(&ImdbConfig {
        num_titles: 6_000,
        num_companies: 500,
        num_persons: 4_000,
        num_keywords: 800,
        seed: 17,
    });
    let mut rng = SmallRng::seed_from_u64(4);
    let samples = SampleSet::draw(&db, 64, &mut rng);

    // Train strictly on 0-2 joins.
    let training = workloads::synthetic(&db, &samples, 3_000, 2, 8).queries;
    assert!(training.iter().all(|q| q.query.num_joins() <= 2));
    let cfg = TrainConfig { epochs: 30, hidden: 48, batch_size: 128, ..TrainConfig::default() };
    let trained = train(&db, 64, &training, cfg);
    let max_trained_card = trained.estimator.featurizer().label_norm().max_card();

    // Evaluate on the scale workload: 0-4 joins, equal buckets.
    let scale = workloads::scale(&db, &samples, 60, 9);
    let pg = PostgresEstimator::new(&db);

    println!(
        "{:>5} {:>8} {:>14} {:>16} {:>14}",
        "joins", "queries", "MSCN 95th", "PostgreSQL 95th", "out-of-range"
    );
    for joins in 0..=4usize {
        let bucket: Vec<LabeledQuery> =
            scale.queries.iter().filter(|q| q.query.num_joins() == joins).cloned().collect();
        if bucket.is_empty() {
            continue;
        }
        let p95 = |est: &dyn Estimator| {
            let mut qerrs: Vec<f64> = est
                .estimate_all(&bucket)
                .into_iter()
                .zip(&bucket)
                .map(|(e, q)| {
                    let t = q.cardinality as f64;
                    (e.max(1.0) / t).max(t / e.max(1.0))
                })
                .collect();
            qerrs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            qerrs[((qerrs.len() - 1) as f64 * 0.95) as usize]
        };
        let out_of_range =
            bucket.iter().filter(|q| q.cardinality as f64 > max_trained_card).count();
        println!(
            "{joins:>5} {:>8} {:>14.1} {:>16.1} {:>14}",
            bucket.len(),
            p95(&trained.estimator),
            p95(&pg),
            out_of_range
        );
    }
    println!(
        "\nExpected shape (paper, Fig. 5/§4.4): error grows with unseen join counts (3, 4) \
         but remains at or below PostgreSQL; much of the 4-join error comes from queries \
         whose true cardinality exceeds anything seen in training."
    );
}
