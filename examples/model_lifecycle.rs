//! Model lifecycle: train → serialize to disk → reload → identical
//! predictions. Demonstrates the §4.7 footprint measurement (the paper's
//! full model serializes to 2.6 MiB at d=256 with 1000 samples; ours is
//! proportionally smaller at the scaled defaults).
//!
//! ```text
//! cargo run --release --example model_lifecycle
//! ```

use learned_cardinalities::prelude::*;

fn main() {
    let db = lc_imdb::generate(&ImdbConfig {
        num_titles: 4_000,
        num_companies: 400,
        num_persons: 3_000,
        num_keywords: 600,
        seed: 23,
    });
    let mut rng = SmallRng::seed_from_u64(5);
    let samples = SampleSet::draw(&db, 100, &mut rng);
    let training = workloads::synthetic(&db, &samples, 1_500, 2, 10).queries;

    for mode in [FeatureMode::NoSamples, FeatureMode::SampleCounts, FeatureMode::Bitmaps] {
        let cfg =
            TrainConfig { epochs: 10, hidden: 64, batch_size: 128, mode, ..TrainConfig::default() };
        let trained = train(&db, 100, &training, cfg);
        let bytes = trained.estimator.to_bytes();

        // Round-trip through a real file, as a deployment would.
        let path = std::env::temp_dir().join(format!("mscn-{mode:?}.bin"));
        std::fs::write(&path, &bytes).expect("write model");
        let loaded = MscnEstimator::from_bytes(&std::fs::read(&path).expect("read model"))
            .expect("decode model");
        std::fs::remove_file(&path).ok();

        let before = trained.estimator.estimate_cards(&training[..50]);
        let after = loaded.estimate_cards(&training[..50]);
        assert_eq!(before, after, "round-trip must preserve predictions exactly");

        println!(
            "{:<20} {:>9} parameters {:>9.1} KiB on disk  (predictions preserved: yes)",
            mode.name(),
            trained.estimator.model().num_params(),
            bytes.len() as f64 / 1024.0
        );
    }
    println!(
        "\nExpected shape (paper §4.7): the bitmap variant is the largest model; \
         all variants are small enough to live inside a query optimizer (paper: ≤ 2.6 MiB \
         at d=256/1000 samples)."
    );
}
