//! Quickstart: the full §3.5 pipeline in ~40 lines.
//!
//! 1. Generate a correlated IMDb-like snapshot.
//! 2. Materialize per-table samples.
//! 3. Generate random training queries and execute them for true
//!    cardinalities (the "cold start" corpus of §3.3).
//! 4. Train MSCN.
//! 5. Estimate unseen queries and compare with the truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use learned_cardinalities::prelude::*;

fn main() {
    // A small snapshot so the example runs in seconds.
    let db = lc_imdb::generate(&ImdbConfig {
        num_titles: 4_000,
        num_companies: 400,
        num_persons: 3_000,
        num_keywords: 600,
        seed: 7,
    });
    println!("database: {} tables, {} rows", db.schema().num_tables(), db.total_rows());

    let mut rng = SmallRng::seed_from_u64(1);
    let samples = SampleSet::draw(&db, 64, &mut rng);

    // Training corpus: unique random queries with 0-2 joins, labeled with
    // true cardinalities, empty results skipped.
    let training = workloads::synthetic(&db, &samples, 2_000, 2, 42).queries;
    println!("training corpus: {} labeled queries", training.len());

    let cfg = TrainConfig { epochs: 25, hidden: 48, batch_size: 128, ..TrainConfig::default() };
    let trained = train(&db, 64, &training, cfg);
    println!(
        "trained in {:.1}s; validation mean q-error {:.2}",
        trained.report.train_seconds,
        trained.report.epoch_val_mean_qerror.last().unwrap()
    );

    // Unseen queries: same generator, different seed.
    let unseen = workloads::synthetic(&db, &samples, 8, 2, 4711).queries;
    let estimates = trained.estimator.estimate_cards(&unseen);
    println!("\n{:<72} {:>10} {:>10} {:>8}", "query", "true", "estimate", "q-error");
    for (q, est) in unseen.iter().zip(&estimates) {
        let truth = q.cardinality as f64;
        let qerr = (est / truth).max(truth / est);
        let sql = q.query.to_sql(&db);
        let sql = if sql.len() > 70 { format!("{}…", &sql[..69]) } else { sql };
        println!("{sql:<72} {truth:>10.0} {est:>10.0} {qerr:>8.2}");
    }
}
