//! Serving end-to-end: train → registry → TCP server → concurrent load →
//! hot-swap → report. This is `lc_serve`'s whole architecture
//! (registry → batcher → model → cache) exercised over a real socket:
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::sync::Arc;
use std::time::Duration;

use learned_cardinalities::lc_serve::{serve, LoadgenConfig};
use learned_cardinalities::prelude::*;

fn main() {
    // 1. Substrate: database snapshot, samples, a bootstrap model.
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(11);
    let samples = SampleSet::draw(&db, 64, &mut rng);
    let data = workloads::synthetic(&db, &samples, 400, 2, 23).queries;
    let cfg = TrainConfig { epochs: 4, hidden: 32, ..TrainConfig::default() };
    println!("training bootstrap model v1 ({} queries) ...", data.len());
    let v1 = train(&db, 64, &data, cfg).estimator;
    println!("training replacement model v2 ...");
    let v2 = train(&db, 64, &data, TrainConfig { seed: 99, ..cfg }).estimator;

    // 2. The serving stack: registry → batcher → model → cache.
    let registry = Arc::new(ModelRegistry::new(v1));
    let service = Arc::new(EstimationService::new(
        db,
        samples,
        Arc::clone(&registry),
        ServeConfig::default(),
    ));
    let handle = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind server");
    let addr = handle.local_addr();
    println!("serving on {addr}");

    // 3. Closed-loop load from 4 connections; hot-swap to v2 mid-run.
    let config = LoadgenConfig {
        addr: addr.to_string(),
        connections: 4,
        requests: 400,
        max_joins: 2,
        seed: 5,
        connect_timeout: Duration::from_secs(5),
        ..LoadgenConfig::default()
    };
    let report = std::thread::scope(|s| {
        let loadgen =
            s.spawn(|| learned_cardinalities::lc_serve::loadgen::run(&config).expect("loadgen"));
        std::thread::sleep(Duration::from_millis(30));
        let version = registry.publish(v2);
        println!("hot-swapped to model v{version} while traffic was in flight");
        loadgen.join().expect("loadgen thread")
    });

    // 4. Report.
    println!("\n{report}\n");
    let batches = service.batch_stats();
    let cache = service.cache_stats();
    println!(
        "server side: {} requests in {} forward passes (mean micro-batch {:.2}, largest {})",
        batches.requests,
        batches.batches,
        batches.mean_batch(),
        batches.max_batch
    );
    println!(
        "estimate cache: {} hits / {} misses ({:.1}% hit rate, {} resident)",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_rate(),
        cache.entries
    );
    assert_eq!(report.errors, 0, "a request failed during the run");
    assert!(report.qps > 0.0);

    handle.shutdown();
    service.shutdown();
    println!("\nclean shutdown — registry versions kept: {:?}", registry.versions());
}
