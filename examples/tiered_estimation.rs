//! Tiered estimation: the full uncertainty-routed pipeline from
//! `lc_serve` measured offline — a deep-ensemble MSCN primary,
//! gradient-boosted stumps for high-disagreement queries, and IBJS for
//! saturated (out-of-trained-range) queries — with per-tier q-error
//! attribution from `lc_eval::TierBreakdown`.
//!
//! The workload mixes in-distribution queries (0–2 joins, what the
//! primary trained on) with 3–4 join extrapolations (the paper's §4.3
//! generalization cliff), so the report shows what routing buys: the
//! primary keeps the bulk at learned-model accuracy while the fallback
//! tiers absorb the shapes it cannot answer.
//!
//! Writes the breakdown as `TIER_baseline.json` next to
//! `BENCH_baseline.json` so routing quality is a tracked artifact.
//!
//! ```text
//! cargo run --release --example tiered_estimation
//! ```

use std::sync::Arc;

use lc_baselines::{GbmConfig, GbmEstimator, OwnedIbjsEstimator};
use lc_core::DeepEnsemble;
use lc_engine::JoinIndexes;
use lc_eval::TierBreakdown;
use learned_cardinalities::prelude::*;

fn main() {
    let db = lc_imdb::generate(&ImdbConfig {
        num_titles: 4_000,
        num_companies: 400,
        num_persons: 3_000,
        num_keywords: 600,
        seed: 29,
    });
    let mut rng = SmallRng::seed_from_u64(8);
    let samples = SampleSet::draw(&db, 64, &mut rng);

    // Train the tiers on 0-2 join queries only.
    let training = workloads::synthetic(&db, &samples, 2_000, 2, 12).queries;
    let cfg = TrainConfig { epochs: 20, hidden: 48, batch_size: 128, ..TrainConfig::default() };
    let (ensemble, _) = DeepEnsemble::train(&db, 64, &training, cfg, 3);
    let gbm = GbmEstimator::train(&db, &training, GbmConfig::default());
    let fallback = OwnedIbjsEstimator::new(
        Arc::new(db.clone()),
        Arc::new(samples.clone()),
        Arc::new(JoinIndexes::build(&db)),
        Arc::new(FullJoinSizes::build(&db)),
    );

    // Calibrate the trust threshold on in-distribution queries: route
    // away anything more uncertain than the in-distribution p90.
    let calibration = workloads::synthetic(&db, &samples, 300, 2, 13).queries;
    let mut stds: Vec<f64> =
        ensemble.estimate_with_uncertainty(&calibration).iter().map(|u| u.log_std).collect();
    stds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let max_log_std = stds[stds.len() * 9 / 10];
    println!("calibrated trust threshold: log-std ≤ {max_log_std:.3}\n");

    let tiered = TieredEstimator::new(Arc::new(ensemble), max_log_std)
        .with_gbm(Arc::new(gbm))
        .with_fallback(Arc::new(fallback));

    // The scale workload: 0-4 joins in equal buckets — half of it is
    // query shapes the learned tiers never saw.
    let scale = workloads::scale(&db, &samples, 60, 14);
    let breakdown = TierBreakdown::measure(&tiered, &scale.queries);

    let tier_name = |t: u8| match t {
        0 => "primary (MSCN ens.)",
        1 => "gbm (stumps)",
        _ => "fallback (IBJS)",
    };
    println!(
        "{:<22} {:>6} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "tier", "hits", "hit-rate", "median", "p95", "p99", "max"
    );
    for t in &breakdown.tiers {
        println!(
            "{:<22} {:>6} {:>8.1}% {:>8.2} {:>8.2} {:>8.1} {:>10.0}",
            tier_name(t.tier),
            t.hits,
            100.0 * breakdown.hit_rate(t.tier),
            t.stats.median,
            t.stats.p95,
            t.stats.p99,
            t.stats.max,
        );
    }
    println!(
        "{:<22} {:>6} {:>8.1}% {:>8.2} {:>8.2} {:>8.1} {:>10.0}",
        "overall",
        breakdown.total,
        100.0,
        breakdown.overall.median,
        breakdown.overall.p95,
        breakdown.overall.p99,
        breakdown.overall.max,
    );

    let path = "TIER_baseline.json";
    std::fs::write(path, breakdown.to_json() + "\n").expect("write breakdown");
    println!(
        "\nwrote {path}. A healthy pipeline keeps the primary's hit rate high with low \
         error and routes the out-of-distribution tail to the classical tiers."
    );
}
