//! Uncertainty-aware estimation (§5 "Uncertainty estimation"): a deep
//! ensemble of MSCN models estimates each query *and* reports how much its
//! members disagree. A query optimizer can threshold that disagreement and
//! fall back to a traditional estimator when the learned model should not
//! be trusted — the deployment story the paper sketches.
//!
//! ```text
//! cargo run --release --example uncertainty_fallback
//! ```

use lc_core::DeepEnsemble;
use learned_cardinalities::prelude::*;

fn main() {
    let db = lc_imdb::generate(&ImdbConfig {
        num_titles: 4_000,
        num_companies: 400,
        num_persons: 3_000,
        num_keywords: 600,
        seed: 29,
    });
    let mut rng = SmallRng::seed_from_u64(8);
    let samples = SampleSet::draw(&db, 64, &mut rng);
    let join_sizes = FullJoinSizes::build(&db);

    // Train a 3-member ensemble on 0-2 join queries.
    let training = workloads::synthetic(&db, &samples, 2_000, 2, 12).queries;
    let cfg = TrainConfig { epochs: 20, hidden: 48, batch_size: 128, ..TrainConfig::default() };
    let (ensemble, _members) = DeepEnsemble::train(&db, 64, &training, cfg, 3);

    // Calibrate the trust threshold on in-distribution queries: flag
    // anything more uncertain than the in-distribution 90th percentile.
    let calibration = workloads::synthetic(&db, &samples, 300, 2, 13).queries;
    let mut stds: Vec<f64> =
        ensemble.estimate_with_uncertainty(&calibration).iter().map(|u| u.log_std).collect();
    stds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let threshold = stds[stds.len() * 9 / 10];
    println!(
        "calibrated disagreement threshold: members within {:.2}x of each other\n",
        threshold.exp()
    );

    // A mixed workload: familiar queries plus 3-4 join extrapolations.
    let scale = workloads::scale(&db, &samples, 12, 14);
    let fallback = RandomSamplingEstimator::new(&db, &samples, &join_sizes);

    println!(
        "{:>5} {:>10} {:>12} {:>9} {:>7} {:>22}",
        "joins", "true", "MSCN ens.", "log-std", "trust?", "chosen estimate"
    );
    let mut fallbacks = 0;
    for q in &scale.queries {
        let u = ensemble.estimate_with_uncertainty(std::slice::from_ref(q))[0];
        let trusted = u.is_trustworthy(threshold);
        let chosen = if trusted {
            u.estimate
        } else {
            fallbacks += 1;
            fallback.estimate(q)
        };
        if q.query.num_joins() >= 3 || !trusted {
            println!(
                "{:>5} {:>10} {:>12.0} {:>9.3} {:>7} {:>14.0} ({})",
                q.query.num_joins(),
                q.cardinality,
                u.estimate,
                u.log_std,
                if trusted { "yes" } else { "NO" },
                chosen,
                if trusted { "ensemble" } else { "fallback: sampling" },
            );
        }
    }
    println!(
        "\n{} of {} queries routed to the sampling fallback. The learned estimator answers \
         the cases it was trained for; the optimizer keeps a safety net everywhere else.",
        fallbacks,
        scale.queries.len()
    );
}
