//! 0-tuple situations (§4.2): what happens when *no* sample tuple
//! satisfies a selective predicate.
//!
//! Purely sampling-based estimators lose their signal entirely and fall
//! back to educated guesses; MSCN still sees the table/column/operator/
//! literal features and produces a far better estimate. This example finds
//! such queries and prints the head-to-head.
//!
//! ```text
//! cargo run --release --example zero_tuple_robustness
//! ```

use learned_cardinalities::prelude::*;

fn main() {
    let db = lc_imdb::generate(&ImdbConfig {
        num_titles: 6_000,
        num_companies: 500,
        num_persons: 4_000,
        num_keywords: 800,
        seed: 13,
    });
    let mut rng = SmallRng::seed_from_u64(3);
    let samples = SampleSet::draw(&db, 64, &mut rng);
    let join_sizes = FullJoinSizes::build(&db);

    let training = workloads::synthetic(&db, &samples, 3_000, 2, 5).queries;
    let cfg = TrainConfig { epochs: 30, hidden: 48, batch_size: 128, ..TrainConfig::default() };
    let trained = train(&db, 64, &training, cfg);

    // Evaluation: base-table queries whose sample bitmap is all zeros but
    // whose true result is non-empty — the exact §4.2 population.
    let evaluation = workloads::synthetic(&db, &samples, 1_500, 2, 6).queries;
    let zero_tuple: Vec<LabeledQuery> =
        evaluation.into_iter().filter(|q| q.query.num_joins() == 0 && q.is_zero_tuple()).collect();
    println!("found {} base-table queries in 0-tuple situations\n", zero_tuple.len());

    let rs = RandomSamplingEstimator::new(&db, &samples, &join_sizes);
    let pg = PostgresEstimator::new(&db);

    let mut sums = [0.0f64; 3];
    println!(
        "{:<58} {:>9} {:>11} {:>11} {:>11}",
        "query", "true", "PostgreSQL", "RandSamp", "MSCN"
    );
    for q in &zero_tuple {
        let truth = q.cardinality as f64;
        let ests = [pg.estimate(q), rs.estimate(q), trained.estimator.estimate(q)];
        for (s, e) in sums.iter_mut().zip(ests) {
            *s += (e.max(1.0) / truth).max(truth / e.max(1.0));
        }
        if truth > 0.0 && q.query.predicates().len() >= 2 {
            let sql = q.query.to_sql(&db);
            let sql = if sql.len() > 56 { format!("{}…", &sql[..55]) } else { sql };
            println!(
                "{sql:<58} {truth:>9.0} {:>11.0} {:>11.0} {:>11.0}",
                ests[0], ests[1], ests[2]
            );
        }
    }
    let n = zero_tuple.len().max(1) as f64;
    println!(
        "\nmean q-error over all {} zero-tuple queries: PostgreSQL {:.1}, Random Sampling {:.1}, MSCN {:.1}",
        zero_tuple.len(),
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    println!(
        "Expected shape (paper, Table 3): MSCN beats both baselines on every percentile — \
         deep learning handles the sampling-based techniques' weak spot."
    );
}
