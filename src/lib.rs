//! # learned-cardinalities
//!
//! A from-scratch Rust reproduction of **“Learned Cardinalities: Estimating
//! Correlated Joins with Deep Learning”** (Kipf, Kipf, Radke, Leis, Boncz,
//! Kemper — CIDR 2019): the MSCN multi-set convolutional network for
//! cardinality estimation, together with every substrate the paper's
//! evaluation needs — a columnar COUNT(*) engine, a correlated IMDb-like
//! dataset generator, materialized-sample machinery, the PostgreSQL /
//! Random Sampling / Index-Based Join Sampling baselines, a minimal neural
//! network library with hand-derived gradients, and a harness that
//! regenerates every table and figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use learned_cardinalities::prelude::*;
//!
//! // 1. A database snapshot with engineered join-crossing correlations.
//! let db = lc_imdb::generate(&ImdbConfig::tiny());
//!
//! // 2. Materialized per-table samples (the §3.4 enrichment).
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let samples = SampleSet::draw(&db, 32, &mut rng);
//!
//! // 3. Generate + execute training queries (§3.3/§3.5).
//! let data = workloads::synthetic(&db, &samples, 300, 2, 42).queries;
//!
//! // 4. Train MSCN.
//! let cfg = TrainConfig { epochs: 5, hidden: 16, ..TrainConfig::default() };
//! let trained = train(&db, 32, &data, cfg);
//!
//! // 5. Estimate.
//! let estimates = trained.estimator.estimate_cards(&data[..5]);
//! assert!(estimates.iter().all(|&e| e >= 1.0));
//! ```
//!
//! See the crate-level docs of the member crates for the full design:
//! [`lc_engine`], [`lc_imdb`], [`lc_query`], [`lc_baselines`], [`lc_nn`],
//! [`lc_core`], [`lc_serve`], [`lc_eval`].
//!
//! To *serve* a trained model to concurrent clients — micro-batched
//! inference, versioned hot-swappable model registry, sharded estimate
//! cache, TCP wire protocol — see [`lc_serve`].

pub use lc_baselines;
pub use lc_core;
pub use lc_engine;
pub use lc_eval;
pub use lc_imdb;
pub use lc_nn;
pub use lc_query;
pub use lc_serve;

/// One-stop imports for the common workflow (see the crate example).
pub mod prelude {
    pub use lc_baselines::{
        FullJoinSizes, IbjsEstimator, PostgresEstimator, RandomSamplingEstimator,
    };
    pub use lc_core::{train, Estimator, FeatureMode, MscnEstimator, TrainConfig, TrainedModel};
    pub use lc_engine::{
        count_star, CmpOp, Database, JoinIndexes, Predicate, QuerySpec, SampleSet,
    };
    pub use lc_imdb::ImdbConfig;
    pub use lc_nn::{KernelChoice, LossKind, RuntimeConfig};
    pub use lc_query::{annotate_query, workloads, LabeledQuery, Query};
    pub use lc_serve::{
        BatcherConfig, CacheConfig, DriftConfig, DriftMonitor, Estimate, EstimationService,
        ModelRegistry, ServeConfig, TierConfig, TieredEstimator,
    };
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;
}
