//! Determinism guarantees: every artifact — dataset, samples, workloads,
//! training, serialization — is a pure function of its seeds. This is what
//! makes EXPERIMENTS.md reproducible bit-for-bit.

use learned_cardinalities::prelude::*;

#[test]
fn dataset_workloads_and_models_are_reproducible() {
    let build = || {
        let db = lc_imdb::generate(&ImdbConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(77);
        let samples = SampleSet::draw(&db, 20, &mut rng);
        let data = workloads::synthetic(&db, &samples, 300, 2, 55).queries;
        let cfg = TrainConfig { epochs: 4, hidden: 16, ..TrainConfig::default() };
        let trained = train(&db, 20, &data, cfg);
        (db, data, trained)
    };
    let (db_a, data_a, trained_a) = build();
    let (db_b, data_b, trained_b) = build();

    assert_eq!(db_a.total_rows(), db_b.total_rows());
    assert_eq!(data_a.len(), data_b.len());
    for (a, b) in data_a.iter().zip(&data_b) {
        assert_eq!(a.query, b.query);
        assert_eq!(a.cardinality, b.cardinality);
        assert_eq!(a.sample_counts, b.sample_counts);
    }
    assert_eq!(trained_a.report.epoch_val_mean_qerror, trained_b.report.epoch_val_mean_qerror);
    assert_eq!(trained_a.estimator.to_bytes(), trained_b.estimator.to_bytes());
}

#[test]
fn serialized_model_reproduces_estimates_across_processes() {
    // Simulates deployment: the bytes are the only thing that crosses the
    // process boundary.
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(78);
    let samples = SampleSet::draw(&db, 20, &mut rng);
    let data = workloads::synthetic(&db, &samples, 250, 2, 56).queries;
    let cfg = TrainConfig { epochs: 3, hidden: 16, ..TrainConfig::default() };
    let trained = train(&db, 20, &data, cfg);

    let bytes = trained.estimator.to_bytes();
    let restored = MscnEstimator::from_bytes(&bytes).unwrap();
    assert_eq!(trained.estimator.estimate_cards(&data[..25]), restored.estimate_cards(&data[..25]));
    // Double round-trip is byte-identical.
    assert_eq!(bytes, restored.to_bytes());
}

#[test]
fn different_seeds_give_different_models() {
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(79);
    let samples = SampleSet::draw(&db, 20, &mut rng);
    let data = workloads::synthetic(&db, &samples, 250, 2, 57).queries;
    let a = train(
        &db,
        20,
        &data,
        TrainConfig { epochs: 2, hidden: 16, seed: 1, ..TrainConfig::default() },
    );
    let b = train(
        &db,
        20,
        &data,
        TrainConfig { epochs: 2, hidden: 16, seed: 2, ..TrainConfig::default() },
    );
    assert_ne!(a.estimator.to_bytes(), b.estimator.to_bytes());
}
