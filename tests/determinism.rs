//! Determinism guarantees: every artifact — dataset, samples, workloads,
//! training, serialization — is a pure function of its seeds. This is what
//! makes EXPERIMENTS.md reproducible bit-for-bit.

use learned_cardinalities::prelude::*;

#[test]
fn dataset_workloads_and_models_are_reproducible() {
    let build = || {
        let db = lc_imdb::generate(&ImdbConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(77);
        let samples = SampleSet::draw(&db, 20, &mut rng);
        let data = workloads::synthetic(&db, &samples, 300, 2, 55).queries;
        let cfg = TrainConfig { epochs: 4, hidden: 16, ..TrainConfig::default() };
        let trained = train(&db, 20, &data, cfg);
        (db, data, trained)
    };
    let (db_a, data_a, trained_a) = build();
    let (db_b, data_b, trained_b) = build();

    assert_eq!(db_a.total_rows(), db_b.total_rows());
    assert_eq!(data_a.len(), data_b.len());
    for (a, b) in data_a.iter().zip(&data_b) {
        assert_eq!(a.query, b.query);
        assert_eq!(a.cardinality, b.cardinality);
        assert_eq!(a.sample_counts, b.sample_counts);
    }
    assert_eq!(trained_a.report.epoch_val_mean_qerror, trained_b.report.epoch_val_mean_qerror);
    assert_eq!(trained_a.estimator.to_bytes(), trained_b.estimator.to_bytes());
}

#[test]
fn serialized_model_reproduces_estimates_across_processes() {
    // Simulates deployment: the bytes are the only thing that crosses the
    // process boundary.
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(78);
    let samples = SampleSet::draw(&db, 20, &mut rng);
    let data = workloads::synthetic(&db, &samples, 250, 2, 56).queries;
    let cfg = TrainConfig { epochs: 3, hidden: 16, ..TrainConfig::default() };
    let trained = train(&db, 20, &data, cfg);

    let bytes = trained.estimator.to_bytes();
    let restored = MscnEstimator::from_bytes(&bytes).unwrap();
    assert_eq!(trained.estimator.estimate_cards(&data[..25]), restored.estimate_cards(&data[..25]));
    // Double round-trip is byte-identical.
    assert_eq!(bytes, restored.to_bytes());
}

/// Train the shared reference model and serialize weights + a slice of
/// estimates — the fingerprint the cross-kernel test compares across
/// subprocesses. Covers both precisions: the f32 pipeline AND the int8
/// quantized artifact with its estimates, so the integer `maddubs`-style
/// kernels are held to the same cross-dispatch bitwise contract as the
/// f32 FMA kernels.
fn kernel_fingerprint() -> Vec<u8> {
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(80);
    let samples = SampleSet::draw(&db, 20, &mut rng);
    let data = workloads::synthetic(&db, &samples, 250, 2, 58).queries;
    let cfg = TrainConfig { epochs: 3, hidden: 16, ..TrainConfig::default() };
    let trained = train(&db, 20, &data, cfg);
    let mut bytes = trained.estimator.to_bytes();
    // Estimates ride along so the check covers the inference path too,
    // not just the training trajectory.
    for est in trained.estimator.estimate_cards(&data[..20]) {
        bytes.extend_from_slice(&est.to_le_bytes());
    }
    // The quantized twin: publish-time conversion plus int8 inference.
    let quantized = lc_core::QuantizedMscn::quantize(&trained.estimator);
    bytes.extend_from_slice(&quantized.to_bytes());
    for est in quantized.estimate_cards(&data[..20]) {
        bytes.extend_from_slice(&est.to_le_bytes());
    }
    bytes
}

/// Subprocess arm of the cross-kernel test: inert in a normal run; with
/// `LC_FINGERPRINT_OUT` set it writes [`kernel_fingerprint`] to that
/// path (the parent sets `LC_KERNEL` per spawn — dispatch is resolved
/// once per process, which is why this needs a subprocess at all).
#[test]
fn subprocess_kernel_fingerprint_helper() {
    let Some(path) = std::env::var_os("LC_FINGERPRINT_OUT") else { return };
    std::fs::write(path, kernel_fingerprint()).expect("write fingerprint");
}

/// `LC_KERNEL=avx2` and `LC_KERNEL=scalar` must produce byte-identical
/// trained weights *and* estimates — the SIMD micro-kernels and their
/// `mul_add` fallback share one accumulation order by construction, and
/// this is the end-to-end proof at model level.
#[test]
fn weights_and_estimates_are_bitwise_identical_across_kernel_paths() {
    if !lc_nn::avx2_available() {
        return; // only one real dispatch path exists: nothing to compare
    }
    let exe = std::env::current_exe().expect("test binary path");
    let fingerprints: Vec<Vec<u8>> = ["avx2", "scalar"]
        .iter()
        .map(|kernel| {
            let out =
                std::env::temp_dir().join(format!("lc_kernel_fp_{}_{kernel}", std::process::id()));
            let status = std::process::Command::new(&exe)
                .args(["subprocess_kernel_fingerprint_helper", "--exact", "--test-threads", "1"])
                .env("LC_KERNEL", kernel)
                .env("LC_FINGERPRINT_OUT", &out)
                .status()
                .expect("spawn fingerprint subprocess");
            assert!(status.success(), "LC_KERNEL={kernel} subprocess failed");
            let bytes = std::fs::read(&out).expect("read fingerprint");
            let _ = std::fs::remove_file(&out);
            assert!(!bytes.is_empty());
            bytes
        })
        .collect();
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "avx2 and scalar kernel paths must train and estimate byte-identically"
    );
}

#[test]
fn different_seeds_give_different_models() {
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(79);
    let samples = SampleSet::draw(&db, 20, &mut rng);
    let data = workloads::synthetic(&db, &samples, 250, 2, 57).queries;
    let a = train(
        &db,
        20,
        &data,
        TrainConfig { epochs: 2, hidden: 16, seed: 1, ..TrainConfig::default() },
    );
    let b = train(
        &db,
        20,
        &data,
        TrainConfig { epochs: 2, hidden: 16, seed: 2, ..TrainConfig::default() },
    );
    assert_ne!(a.estimator.to_bytes(), b.estimator.to_bytes());
}
