//! End-to-end quality gates for the full pipeline: data → samples →
//! training corpus → MSCN → estimates, with the paper's qualitative
//! claims as assertions.

use lc_engine::JoinIndexes;
use learned_cardinalities::prelude::*;

struct Pipeline {
    db: lc_engine::Database,
    samples: SampleSet,
    evaluation: Vec<LabeledQuery>,
    trained: TrainedModel,
}

/// The pipeline is expensive (labeling + training); build it once and share
/// it across the gate tests.
fn pipeline() -> &'static Pipeline {
    static PIPELINE: std::sync::OnceLock<Pipeline> = std::sync::OnceLock::new();
    PIPELINE.get_or_init(|| {
        let db = lc_imdb::generate(&ImdbConfig {
            num_titles: 4_000,
            num_companies: 400,
            num_persons: 3_000,
            num_keywords: 600,
            seed: 31,
        });
        let mut rng = SmallRng::seed_from_u64(6);
        let samples = SampleSet::draw(&db, 50, &mut rng);
        let training = workloads::synthetic(&db, &samples, 2_500, 2, 21).queries;
        let evaluation = workloads::synthetic(&db, &samples, 400, 2, 22).queries;
        let cfg = TrainConfig { epochs: 30, hidden: 48, batch_size: 128, ..TrainConfig::default() };
        let trained = train(&db, 50, &training, cfg);
        Pipeline { db, samples, evaluation, trained }
    })
}

fn qerrors(est: &dyn Estimator, qs: &[LabeledQuery]) -> Vec<f64> {
    let mut v: Vec<f64> = est
        .estimate_all(qs)
        .into_iter()
        .zip(qs)
        .map(|(e, q)| {
            let t = q.cardinality as f64;
            (e.max(1.0) / t).max(t / e.max(1.0))
        })
        .collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

fn pct(sorted: &[f64], p: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * p / 100.0).round() as usize]
}

#[test]
fn mscn_beats_sampling_baselines_at_the_tail() {
    let p = pipeline();
    let join_sizes = FullJoinSizes::build(&p.db);
    let indexes = JoinIndexes::build(&p.db);
    let rs = RandomSamplingEstimator::new(&p.db, &p.samples, &join_sizes);
    let ibjs = IbjsEstimator::new(&p.db, &p.samples, &indexes, &join_sizes);
    let pg = PostgresEstimator::new(&p.db);

    let m = qerrors(&p.trained.estimator, &p.evaluation);
    let r = qerrors(&rs, &p.evaluation);
    let i = qerrors(&ibjs, &p.evaluation);
    let g = qerrors(&pg, &p.evaluation);

    // Paper Table 2 shape: MSCN's tail beats the sampling baselines (the
    // paper's robustness claim). Against PostgreSQL we only require
    // competitiveness at this miniature scale: our statistics baseline is
    // far stronger on the mild synthetic correlations than real PostgreSQL
    // was on the real IMDb, and MSCN's edge over it grows with training
    // data — at the standard experiment scale (20k queries) MSCN wins the
    // 95th outright (see EXPERIMENTS.md, Table 2).
    let m95 = pct(&m, 95.0);
    assert!(m95 < pct(&r, 95.0), "MSCN 95th {m95} not better than RS {}", pct(&r, 95.0));
    assert!(m95 < pct(&i, 95.0), "MSCN 95th {m95} not better than IBJS {}", pct(&i, 95.0));
    assert!(m95 < pct(&g, 95.0) * 2.5, "MSCN 95th {m95} not competitive with PG {}", pct(&g, 95.0));
    // And its mean beats the sampling baselines (at standard scale the gap
    // is >2.5x; at this miniature scale we gate on strict improvement).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(mean(&m) < mean(&r), "MSCN mean {} should be below RS mean {}", mean(&m), mean(&r));
    // MSCN median is competitive (within 3x of the best competitor median).
    let best_median = pct(&i, 50.0).min(pct(&g, 50.0)).min(pct(&r, 50.0));
    assert!(pct(&m, 50.0) < best_median * 3.0, "MSCN median not competitive");
    // Sanity: the model actually learned something (median below 2.5).
    assert!(pct(&m, 50.0) < 2.5, "MSCN median {}", pct(&m, 50.0));
}

#[test]
fn mscn_handles_zero_tuple_situations() {
    let p = pipeline();
    let join_sizes = FullJoinSizes::build(&p.db);
    let rs = RandomSamplingEstimator::new(&p.db, &p.samples, &join_sizes);
    let zero: Vec<LabeledQuery> = p
        .evaluation
        .iter()
        .filter(|q| q.query.num_joins() == 0 && q.is_zero_tuple())
        .cloned()
        .collect();
    assert!(
        zero.len() >= 5,
        "evaluation workload should contain 0-tuple base-table queries, got {}",
        zero.len()
    );
    let m = qerrors(&p.trained.estimator, &zero);
    let r = qerrors(&rs, &zero);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Paper Table 3 shape: MSCN's mean q-error beats RS's on this subset.
    assert!(
        mean(&m) < mean(&r),
        "MSCN mean {} should beat RS mean {} on 0-tuple queries",
        mean(&m),
        mean(&r)
    );
}

#[test]
fn mscn_generalizes_to_unseen_join_counts() {
    let p = pipeline();
    // Three joins: never seen during training (0-2).
    let scale = workloads::scale(&p.db, &p.samples, 30, 23);
    let three: Vec<LabeledQuery> =
        scale.queries.iter().filter(|q| q.query.num_joins() == 3).cloned().collect();
    assert_eq!(three.len(), 30);
    let pg = PostgresEstimator::new(&p.db);
    let m = qerrors(&p.trained.estimator, &three);
    let g = qerrors(&pg, &three);
    // Paper Fig. 5 shape: degraded but in PostgreSQL's ballpark at the
    // median (generous factor to keep the gate robust across seeds).
    assert!(
        pct(&m, 50.0) < pct(&g, 50.0) * 5.0,
        "3-join median {} vs PostgreSQL {}",
        pct(&m, 50.0),
        pct(&g, 50.0)
    );
    // Predictions are finite, positive, and bounded by the trained range.
    let max_card = p.trained.estimator.featurizer().label_norm().max_card();
    for e in p.trained.estimator.estimate_cards(&three) {
        assert!(e.is_finite() && e >= 1.0);
        assert!(e <= max_card * 1.01, "estimate {e} above trained range {max_card}");
    }
}

#[test]
fn estimator_trait_objects_compose() {
    // The evaluation harness treats all estimators uniformly; verify the
    // trait-object path end to end with every estimator kind.
    let p = pipeline();
    let join_sizes = FullJoinSizes::build(&p.db);
    let indexes = JoinIndexes::build(&p.db);
    let pg = PostgresEstimator::new(&p.db);
    let rs = RandomSamplingEstimator::new(&p.db, &p.samples, &join_sizes);
    let ibjs = IbjsEstimator::new(&p.db, &p.samples, &indexes, &join_sizes);
    let ests: Vec<&dyn Estimator> = vec![&pg, &rs, &ibjs, &p.trained.estimator];
    for est in ests {
        let out = est.estimate_all(&p.evaluation[..10]);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&e| e.is_finite() && e >= 1.0), "{}", est.name());
        assert!(!est.name().is_empty());
    }
}
