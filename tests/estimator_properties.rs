//! Metamorphic and semantic properties of the engine and the estimators
//! that must hold regardless of data distribution:
//!
//! * adding a conjunct never increases the *true* cardinality (engine
//!   monotonicity);
//! * the PostgreSQL baseline's selectivities are probabilities and its
//!   MCV-covered equality estimates are exact;
//! * Random Sampling is an unbiased extrapolator where it has signal;
//! * IBJS inherits RS's base-table behaviour exactly;
//! * every estimator is a pure function of the query (call-twice
//!   determinism).

use proptest::prelude::*;
use rand::Rng;

use lc_engine::{count_star, JoinId, JoinIndexes, TableId};
use learned_cardinalities::prelude::*;

fn fixture() -> (lc_engine::Database, SampleSet) {
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(123);
    let samples = SampleSet::draw(&db, 40, &mut rng);
    (db, samples)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Engine monotonicity: conjoining one more predicate can only shrink
    /// the result, for single tables and for star joins.
    #[test]
    fn adding_a_conjunct_never_grows_cardinality(seed in 0u64..10_000) {
        let (db, _samples) = fixture();
        let mut generator = lc_query::QueryGenerator::new(
            &db,
            lc_query::GeneratorConfig { max_joins: 2, seed },
        );
        let q = generator.generate();
        let base = count_star(&db, &q.spec());
        // Derive a stricter query by appending a fresh predicate on some
        // participating table's data column.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD);
        let &t = q.tables().first().unwrap();
        let data_cols = db.schema().table(t).data_columns();
        prop_assume!(!data_cols.is_empty());
        let col = data_cols[seed as usize % data_cols.len()];
        let stats = db.column_stats(t, col);
        prop_assume!(stats.ndv > 0);
        let value = stats.min + (rng.gen_range(0..=(stats.max - stats.min).max(0)));
        let op = [CmpOp::Eq, CmpOp::Lt, CmpOp::Gt][seed as usize % 3];
        let mut preds = q.predicates().to_vec();
        preds.push(Predicate { table: t, column: col, op, value });
        let stricter = Query::new(q.tables().to_vec(), q.joins().to_vec(), preds);
        let strict = count_star(&db, &stricter.spec());
        prop_assert!(
            strict <= base,
            "conjunct grew the result: {base} -> {strict} for {stricter}"
        );
    }

    /// PostgreSQL column selectivities are valid probabilities for
    /// arbitrary operators and literals, including out-of-domain ones.
    #[test]
    fn postgres_selectivities_are_probabilities(
        table_idx in 0usize..6,
        value in -100i64..3000,
        op_idx in 0usize..3,
    ) {
        let (db, _) = fixture();
        let stats = lc_baselines::DbStatistics::build(&db, 50, 64);
        let t = TableId(table_idx as u16);
        let op = [CmpOp::Eq, CmpOp::Lt, CmpOp::Gt][op_idx];
        for col in db.schema().table(t).data_columns() {
            let sel = stats.table(t).columns[col].selectivity(op, value);
            prop_assert!((0.0..=1.0).contains(&sel), "sel {sel} out of range");
        }
    }

    /// Estimators are deterministic: estimating the same labeled query
    /// twice gives bit-identical results (IBJS included, despite its
    /// internal subsampling RNG).
    #[test]
    fn estimators_are_pure_functions(seed in 0u64..5_000) {
        let (db, samples) = fixture();
        let join_sizes = FullJoinSizes::build(&db);
        let indexes = JoinIndexes::build(&db);
        let pg = PostgresEstimator::new(&db);
        let rs = RandomSamplingEstimator::new(&db, &samples, &join_sizes);
        let ibjs = IbjsEstimator::new(&db, &samples, &indexes, &join_sizes);
        let mut generator = lc_query::QueryGenerator::new(
            &db,
            lc_query::GeneratorConfig { max_joins: 2, seed },
        );
        let q = LabeledQuery::compute(&db, &samples, generator.generate());
        for est in [&pg as &dyn Estimator, &rs, &ibjs] {
            let a = est.estimate(&q);
            let b = est.estimate(&q);
            prop_assert_eq!(a, b, "{} not deterministic", est.name());
            prop_assert!(a >= 1.0 && a.is_finite());
        }
    }
}

#[test]
fn postgres_mcv_equality_is_exact_on_small_domains() {
    // kind_id has 7 values, all captured by the MCV list, so the equality
    // estimate equals the exact count.
    let (db, samples) = fixture();
    let pg = PostgresEstimator::new(&db);
    let t = db.schema().table_id("title").unwrap();
    let kind_col = db.schema().table(t).column_index("kind_id").unwrap();
    for kind in 1..=7i64 {
        let q = Query::new(
            vec![t],
            vec![],
            vec![Predicate { table: t, column: kind_col, op: CmpOp::Eq, value: kind }],
        );
        let labeled = LabeledQuery::compute(&db, &samples, q);
        let est = pg.estimate(&labeled);
        let truth = labeled.cardinality as f64;
        assert!(
            (est - truth).abs() <= truth * 0.001 + 1.0,
            "kind {kind}: MCV estimate {est} should be exact, truth {truth}"
        );
    }
}

#[test]
fn random_sampling_is_unbiased_across_sample_draws() {
    // Averaged over many independent sample sets, the RS estimate of a
    // fixed base-table query converges to the true cardinality.
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let join_sizes = FullJoinSizes::build(&db);
    let t = db.schema().table_id("title").unwrap();
    let year_col = db.schema().table(t).column_index("production_year").unwrap();
    let q = Query::new(
        vec![t],
        vec![],
        vec![Predicate { table: t, column: year_col, op: CmpOp::Gt, value: 1990 }],
    );
    let mut total = 0.0;
    let runs = 40;
    let mut truth = 0.0;
    for seed in 0..runs {
        let mut rng = SmallRng::seed_from_u64(seed);
        let samples = SampleSet::draw(&db, 60, &mut rng);
        let labeled = LabeledQuery::compute(&db, &samples, q.clone());
        truth = labeled.cardinality as f64;
        let rs = RandomSamplingEstimator::new(&db, &samples, &join_sizes);
        total += rs.estimate(&labeled);
    }
    let mean = total / runs as f64;
    assert!(
        (mean - truth).abs() / truth < 0.15,
        "RS should be unbiased: mean estimate {mean} vs truth {truth}"
    );
}

#[test]
fn ibjs_equals_rs_on_every_base_table_query() {
    let (db, samples) = fixture();
    let join_sizes = FullJoinSizes::build(&db);
    let indexes = JoinIndexes::build(&db);
    let rs = RandomSamplingEstimator::new(&db, &samples, &join_sizes);
    let ibjs = IbjsEstimator::new(&db, &samples, &indexes, &join_sizes);
    let workload = workloads::synthetic(&db, &samples, 150, 0, 7).queries;
    for q in &workload {
        assert_eq!(q.query.num_joins(), 0);
        assert_eq!(ibjs.estimate(q), rs.estimate(q), "IBJS must match RS on base tables");
    }
}

#[test]
fn full_join_sizes_consistent_with_subset_monotonicity() {
    // Joining one more fact table multiplies per-key fan-outs, so with all
    // fan-outs >= 0 the size of a superset join can exceed OR fall below a
    // subset's (zero fan-outs prune rows) — but the single-edge sizes must
    // equal the fact row counts exactly, and all sizes must be positive.
    let (db, _) = fixture();
    let sizes = FullJoinSizes::build(&db);
    for j in 0..db.schema().num_joins() {
        let edge = db.schema().join(JoinId(j as u16));
        assert_eq!(
            sizes.size(&[JoinId(j as u16)]),
            db.table(edge.fact).num_rows() as u64,
            "single-edge PK/FK join size must equal the fact row count"
        );
    }
    let all: Vec<JoinId> = (0..db.schema().num_joins()).map(|i| JoinId(i as u16)).collect();
    assert!(sizes.size(&all) > 0, "the full star join should be non-empty");
}
