//! Property-based tests over the cross-crate invariants:
//!
//! * the fast star-join executor agrees with the brute-force reference on
//!   arbitrary micro-databases and predicate sets;
//! * MSCN predictions are permutation invariant (the Deep Sets claim);
//! * label normalization round-trips;
//! * model serialization round-trips for arbitrary architectures.

use proptest::prelude::*;

use lc_core::LabelNorm;
use lc_engine::{
    count_star, count_star_naive, Column, ColumnDef, Database, JoinEdge, JoinId, Schema, Table,
    TableId,
};
use learned_cardinalities::prelude::*;

// -------------------------------------------------------------- executor

#[derive(Debug, Clone)]
struct MicroDb {
    center_rows: usize,
    /// Per fact table: (fk values, data values).
    facts: Vec<(Vec<i64>, Vec<i64>)>,
    /// Center data column values (with NULLs).
    center_data: Vec<Option<i64>>,
}

fn micro_db_strategy() -> impl Strategy<Value = MicroDb> {
    (1usize..10).prop_flat_map(|center_rows| {
        let fact =
            proptest::collection::vec((0..center_rows as i64, -3i64..4), 0..25).prop_map(|rows| {
                let (fks, data): (Vec<i64>, Vec<i64>) = rows.into_iter().unzip();
                (fks, data)
            });
        let center_data =
            proptest::collection::vec(proptest::option::weighted(0.85, -3i64..4), center_rows);
        (Just(center_rows), proptest::collection::vec(fact, 2..3), center_data).prop_map(
            |(center_rows, facts, center_data)| MicroDb { center_rows, facts, center_data },
        )
    })
}

fn build_micro(m: &MicroDb) -> Database {
    let mut tables = vec![TableDefOwned::center()];
    for i in 0..m.facts.len() {
        tables.push(TableDefOwned::fact(i));
    }
    let defs: Vec<_> = tables.into_iter().map(|t| t.def).collect();
    let joins = (0..m.facts.len())
        .map(|i| JoinEdge {
            fact: TableId(i as u16 + 1),
            fact_col: 0,
            center: TableId(0),
            center_col: 0,
        })
        .collect();
    let schema = Schema::new(defs, joins, TableId(0));
    let center = Table::new(vec![
        Column::from_values((0..m.center_rows as i64).collect()),
        Column::from_nullable(m.center_data.clone()),
    ]);
    let mut data = vec![center];
    for (fks, vals) in &m.facts {
        data.push(Table::new(vec![
            Column::from_values(fks.clone()),
            Column::from_values(vals.clone()),
        ]));
    }
    Database::new(schema, data)
}

struct TableDefOwned {
    def: lc_engine::TableDef,
}

impl TableDefOwned {
    fn center() -> Self {
        TableDefOwned {
            def: lc_engine::TableDef {
                name: "center".into(),
                columns: vec![ColumnDef::primary_key("id"), ColumnDef::nullable_data("v")],
            },
        }
    }
    fn fact(i: usize) -> Self {
        TableDefOwned {
            def: lc_engine::TableDef {
                name: format!("fact{i}"),
                columns: vec![ColumnDef::foreign_key("fk", TableId(0)), ColumnDef::data("v")],
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The closed-form star-join executor equals brute force on arbitrary
    /// micro databases, join subsets, and conjunctive predicates.
    #[test]
    fn executor_matches_naive(
        m in micro_db_strategy(),
        joins_mask in 0u8..4,
        preds in proptest::collection::vec(
            (0usize..3, 0usize..3, -3i64..4), 0..4
        ),
    ) {
        let db = build_micro(&m);
        let mut tables = vec![TableId(0)];
        let mut joins = Vec::new();
        for i in 0..m.facts.len() {
            if joins_mask >> i & 1 == 1 {
                tables.push(TableId(i as u16 + 1));
                joins.push(JoinId(i as u16));
            }
        }
        // Predicates restricted to participating tables and data columns.
        let ops = [CmpOp::Eq, CmpOp::Lt, CmpOp::Gt];
        let predicates: Vec<Predicate> = preds
            .into_iter()
            .map(|(t, op, v)| Predicate {
                table: tables[t % tables.len()],
                column: 1,
                op: ops[op],
                value: v,
            })
            .collect();
        let spec = QuerySpec { tables: &tables, joins: &joins, predicates: &predicates };
        prop_assert_eq!(count_star(&db, &spec), count_star_naive(&db, &spec));
    }

    /// Normalize/denormalize of cardinalities round-trips within float
    /// tolerance for in-range values.
    #[test]
    fn label_norm_roundtrips(
        cards in proptest::collection::vec(1u64..1_000_000_000, 2..20),
        probe_idx in 0usize..20,
    ) {
        let norm = LabelNorm::fit(cards.iter().copied());
        let probe = cards[probe_idx % cards.len()];
        let back = norm.denormalize(norm.normalize(probe));
        let rel = (back - probe as f64).abs() / probe as f64;
        prop_assert!(rel < 1e-3, "{} -> {}", probe, back);
    }

    /// Bitmap set/get/count/iterate agree for arbitrary position sets.
    #[test]
    fn bitmap_ops_agree(positions in proptest::collection::btree_set(0usize..200, 0..40)) {
        let mut bm = lc_engine::Bitmap::new(200);
        for &p in &positions {
            bm.set(p);
        }
        prop_assert_eq!(bm.count_ones() as usize, positions.len());
        prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(), positions.iter().copied().collect::<Vec<_>>());
        for p in 0..200 {
            prop_assert_eq!(bm.get(p), positions.contains(&p));
        }
        prop_assert_eq!(bm.all_zero(), positions.is_empty());
    }
}

// ------------------------------------------------- model-level properties

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Permutation invariance at the LabeledQuery level: however the sets
    /// are ordered when the query is constructed, the canonical
    /// representation — and therefore the MSCN estimate — is identical.
    #[test]
    fn canonicalization_makes_estimates_order_free(seed in 0u64..1000) {
        let db = lc_imdb::generate(&ImdbConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(90);
        let samples = SampleSet::draw(&db, 16, &mut rng);
        let data = workloads::synthetic(&db, &samples, 60, 2, 91).queries;
        let cfg = TrainConfig { epochs: 1, hidden: 8, ..TrainConfig::default() };
        let trained = train(&db, 16, &data, cfg);

        let original = &data[(seed as usize) % data.len()];
        // Rebuild the same query with reversed set orders.
        let q2 = Query::new(
            original.query.tables().iter().rev().copied().collect(),
            original.query.joins().iter().rev().copied().collect(),
            original.query.predicates().iter().rev().copied().collect(),
        );
        prop_assert_eq!(&q2, &original.query);
        let relabeled = LabeledQuery::compute(&db, &samples, q2);
        let a = trained.estimator.estimate(original);
        let b = trained.estimator.estimate(&relabeled);
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }
}
