//! Workspace smoke test: the facade's `prelude` re-exports resolve, and
//! the minimal end-to-end pipeline — generate → sample → label → train →
//! estimate — runs on a tiny fixture and produces sane estimates. This is
//! the cheapest cross-crate guard: if any member crate's public surface
//! drifts, this file stops compiling before anything subtler fails.

use learned_cardinalities::prelude::*;

#[test]
fn prelude_reexports_resolve() {
    // One value or type per re-exporting crate; the assertions are
    // incidental — compiling this function is the test.
    let _: fn(&lc_engine::Database) -> FullJoinSizes = FullJoinSizes::build; // lc_baselines
    let cfg = TrainConfig::default(); // lc_core
    assert!(cfg.epochs > 0);
    assert_eq!(CmpOp::Eq.symbol(), "="); // lc_engine
    let imdb = ImdbConfig::tiny(); // lc_imdb
    assert!(imdb.num_titles > 0);
    let _loss = LossKind::MeanQError; // lc_nn
    let _rng = SmallRng::seed_from_u64(0); // rand re-exports
    let serve_cfg = ServeConfig::default(); // lc_serve
    assert!(serve_cfg.batcher.max_batch >= 1);
    assert!(serve_cfg.drift.qerror_threshold > 1.0);
    assert!(CacheConfig::default().capacity > 0);
    let _ = KernelChoice::Auto; // lc_nn runtime config
    assert_eq!(RuntimeConfig::default().train_threads, 0);
}

#[test]
fn prelude_serving_pipeline_estimates_and_caches() {
    // The serving layer through the facade: train → registry → service.
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(3);
    let samples = SampleSet::draw(&db, 24, &mut rng);
    let data = workloads::synthetic(&db, &samples, 120, 2, 13).queries;
    let cfg = TrainConfig { epochs: 2, hidden: 16, ..TrainConfig::default() };
    let trained = train(&db, 24, &data, cfg);
    let registry = std::sync::Arc::new(ModelRegistry::new(trained.estimator));
    let service = EstimationService::new(db, samples, registry, ServeConfig::default());
    let first: Estimate = service.estimate(&data[0].query).expect("serve");
    assert!(first.cardinality >= 1.0 && !first.cache_hit);
    let second = service.estimate(&data[0].query).expect("serve");
    assert!(second.cache_hit && second.cardinality == first.cardinality);
    service.shutdown();
}

#[test]
fn tiny_pipeline_produces_finite_estimates() {
    // 1. Generate a correlated database snapshot.
    let db = lc_imdb::generate(&ImdbConfig::tiny());
    assert!(db.schema().num_tables() > 0);

    // 2. Draw materialized per-table samples.
    let mut rng = SmallRng::seed_from_u64(7);
    let samples = SampleSet::draw(&db, 24, &mut rng);

    // 3. Generate + label a small training workload.
    let data = workloads::synthetic(&db, &samples, 200, 2, 11).queries;
    assert!(!data.is_empty(), "workload generation produced no queries");

    // 4. Train a small MSCN.
    let cfg = TrainConfig { epochs: 3, hidden: 16, ..TrainConfig::default() };
    let trained = train(&db, 24, &data, cfg);

    // 5. Estimate: every prediction is finite and a valid cardinality.
    let estimates = trained.estimator.estimate_cards(&data[..data.len().min(32)]);
    assert!(!estimates.is_empty());
    for (i, &e) in estimates.iter().enumerate() {
        assert!(e.is_finite(), "estimate {i} is not finite: {e}");
        assert!(e >= 1.0, "estimate {i} below the cardinality floor: {e}");
    }

    // The baselines answer the same queries through the common trait.
    let join_sizes = FullJoinSizes::build(&db);
    let indexes = JoinIndexes::build(&db);
    let pg = PostgresEstimator::new(&db);
    let rs = RandomSamplingEstimator::new(&db, &samples, &join_sizes);
    let ibjs = IbjsEstimator::new(&db, &samples, &indexes, &join_sizes);
    for est in [&pg as &dyn Estimator, &rs, &ibjs] {
        let e = est.estimate(&data[0]);
        assert!(e.is_finite() && e >= 1.0, "{}: bad estimate {e}", est.name());
    }
}
