//! A minimal stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, vendored so the workspace builds offline.
//!
//! Provides the [`Buf`] (read, implemented for `&[u8]`) and [`BufMut`]
//! (write, implemented for `Vec<u8>`) accessors this repository's binary
//! serialization uses. Like the real crate, reads panic on underflow —
//! callers guard with [`Buf::remaining`].

/// Sequential little-endian reads from a byte source, advancing past
/// consumed bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume `n` bytes and return them.
    ///
    /// # Panics
    /// If fewer than `n` bytes remain.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_bytes(2).try_into().expect("2 bytes"))
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow: need {n}, have {}", self.len());
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Sequential little-endian writes to a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Write one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Write a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_all_accessors() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEAD);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), buf.len());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEAD);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
