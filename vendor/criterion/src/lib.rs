//! A small stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, vendored so the workspace builds offline.
//!
//! It keeps criterion's surface syntax — [`Criterion`], benchmark groups,
//! `Bencher::iter`, [`criterion_group!`] / [`criterion_main!`] — and
//! measures wall-clock time with a warm-up phase followed by timed
//! samples. Statistics are simpler than real criterion (mean / min / max
//! over per-iteration times, no outlier analysis), and results are printed
//! to stdout.
//!
//! Set `LC_BENCH_JSON=<path>` to additionally append one JSON line per
//! benchmark (`{"name":…,"mean_ns":…,"min_ns":…,"max_ns":…,"iters":…}`),
//! which is how `BENCH_baseline.json` snapshots are captured.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state and measurement settings.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Wall-clock budget for the timed phase of each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the untimed warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A set of benchmarks sharing a name prefix and (optionally) settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Override the wall-clock budget for the timed phase of each
    /// benchmark in the group (scoped to the group, like real criterion).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Run one benchmark inside the group (reported as `group/id`).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let saved = self.criterion.measurement_time;
        if let Some(d) = self.measurement_time {
            self.criterion.measurement_time = d;
        }
        self.criterion.run_one(&full, sample_size, f);
        self.criterion.measurement_time = saved;
        self
    }

    /// Finish the group (kept for API compatibility; reporting is
    /// per-benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed loop.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Measure `routine` repeatedly: warm up, then time iterations until
    /// the sample target or the measurement budget is reached.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: at least one call, at most the warm-up budget.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        let measure_start = Instant::now();
        self.samples_ns.clear();
        while self.samples_ns.len() < self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples_ns.push(t.elapsed().as_nanos());
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("bench {id:<52} (no samples — did the closure call iter?)");
            return;
        }
        let n = self.samples_ns.len() as u128;
        let mean = self.samples_ns.iter().sum::<u128>() / n;
        let min = *self.samples_ns.iter().min().expect("non-empty");
        let max = *self.samples_ns.iter().max().expect("non-empty");
        println!(
            "bench {id:<52} mean {mean:>12} ns  min {min:>12} ns  max {max:>12} ns  ({n} iters)"
        );
        if let Ok(path) = std::env::var("LC_BENCH_JSON") {
            use std::io::Write;
            let line = format!(
                "{{\"name\":\"{id}\",\"mean_ns\":{mean},\"min_ns\":{min},\"max_ns\":{max},\"iters\":{n}}}\n"
            );
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(e) = written {
                eprintln!("LC_BENCH_JSON: cannot append to {path}: {e}");
            }
        }
    }
}

/// Define a benchmark group function, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        /// Benchmark group entry point (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `fn main` running the given groups (for `harness = false`
/// bench targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_record_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        let mut ran = 0u32;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                ran += 1;
                2u64 + 2
            })
        });
        assert!(ran >= 1, "routine should have run during warm-up + measurement");
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
    }
}
