//! Minimal offline stand-in for an epoll readiness-polling crate
//! (`mio`/`polling`), vendored under the same no-network policy as
//! `vendor/rand` and `vendor/bytes`.
//!
//! Scope is exactly what `lc-serve`'s shard-per-core reactor needs:
//!
//! - [`Poller`] — a level-triggered readiness queue over raw file
//!   descriptors ([`Poller::add`] / [`Poller::modify`] /
//!   [`Poller::delete`] / [`Poller::wait`]), with opt-in
//!   `EPOLLEXCLUSIVE` registration so several shards can share one
//!   listening socket without thundering-herd wakeups.
//! - [`Waker`] — a cross-thread wakeup handle (an `eventfd`) that makes
//!   a blocked [`Poller::wait`] return promptly; this is what lets
//!   `ServerHandle::shutdown` stop reactor threads without the old
//!   "poke connection" hack.
//! - [`raise_nofile_limit`] — a `prlimit64` helper for the 10k+
//!   idle-connection tests, which need more file descriptors than the
//!   default soft limit on some hosts.
//!
//! On Linux/x86-64 everything is raw syscalls via inline asm — no libc
//! dependency, matching the `sched_setaffinity` idiom in `lc_nn`'s
//! worker pool. Other targets get a degraded but *correct* fallback:
//! `wait` reports every registered descriptor as ready after a short
//! sleep. Callers use nonblocking sockets, so spurious readiness only
//! costs a `WouldBlock` — semantics hold, efficiency is Linux-only.
//!
//! Level-triggered only (no `EPOLLET`): a descriptor keeps reporting
//! ready until drained, so partial reads/writes can never strand a
//! connection.

/// Interest in read readiness (includes peer-hangup notification).
pub const READ: u32 = 1;
/// Interest in write readiness.
pub const WRITE: u32 = 2;

/// One readiness notification from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The caller-chosen token the descriptor was registered with.
    pub token: u64,
    /// Reading will not block (data, EOF, or a pending error).
    pub readable: bool,
    /// Writing will not block (or the peer hung up / errored).
    pub writable: bool,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub use imp::{raise_nofile_limit, Poller, Waker};

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub use fallback::{raise_nofile_limit, Poller, Waker};

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    #![allow(unsafe_code)] // contained raw-syscall wrappers (epoll/eventfd/
                           // prlimit64/read/write/close); every pointer
                           // argument is a live, properly sized local buffer.

    use std::io;
    use std::sync::Arc;

    use super::Event;

    const SYS_READ: i64 = 0;
    const SYS_WRITE: i64 = 1;
    const SYS_CLOSE: i64 = 3;
    const SYS_EPOLL_WAIT: i64 = 232;
    const SYS_EPOLL_CTL: i64 = 233;
    const SYS_EVENTFD2: i64 = 290;
    const SYS_EPOLL_CREATE1: i64 = 291;
    const SYS_PRLIMIT64: i64 = 302;

    const EPOLL_CLOEXEC: i64 = 0x80000;
    const EPOLL_CTL_ADD: i64 = 1;
    const EPOLL_CTL_DEL: i64 = 2;
    const EPOLL_CTL_MOD: i64 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLEXCLUSIVE: u32 = 1 << 28;

    const EFD_NONBLOCK: i64 = 0x800;
    const EFD_CLOEXEC: i64 = 0x80000;

    const EINTR: i64 = 4;

    /// x86-64 `epoll_event`: packed, 12 bytes (`__attribute__((packed))`
    /// in the kernel ABI on this architecture).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Raw 4-argument syscall. Returns the raw kernel result
    /// (negative errno on failure).
    ///
    /// # Safety
    /// Pointer-typed arguments must reference live buffers sized as the
    /// specific syscall requires.
    unsafe fn syscall4(n: i64, a1: i64, a2: i64, a3: i64, a4: i64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// Convert a raw syscall return into `io::Result<i64>`.
    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    fn epoll_bits(interest: u32) -> u32 {
        let mut ev = 0u32;
        if interest & super::READ != 0 {
            ev |= EPOLLIN | EPOLLRDHUP;
        }
        if interest & super::WRITE != 0 {
            ev |= EPOLLOUT;
        }
        ev
    }

    /// An epoll instance. All registration methods take `&self`;
    /// `wait` is intended to be called from the owning reactor thread.
    #[derive(Debug)]
    pub struct Poller {
        epfd: i64,
    }

    impl Poller {
        /// Create a new epoll instance (`EPOLL_CLOEXEC`).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: no pointer arguments.
            let epfd = check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i64, fd: i64, events: u32, token: u64) -> io::Result<()> {
            let ev = EpollEvent { events, data: token };
            // SAFETY: `ev` is a live, correctly laid out epoll_event;
            // the kernel copies it before returning.
            check(unsafe {
                syscall4(SYS_EPOLL_CTL, self.epfd, op, fd, &ev as *const EpollEvent as i64)
            })?;
            Ok(())
        }

        /// Register `fd` under `token` with the given interest
        /// ([`super::READ`] `|` [`super::WRITE`]). With `exclusive`,
        /// registration uses `EPOLLEXCLUSIVE` — when several pollers
        /// register the same listening socket, the kernel wakes only
        /// (at least) one of them per readiness edge.
        pub fn add(&self, fd: i32, token: u64, interest: u32, exclusive: bool) -> io::Result<()> {
            let mut events = epoll_bits(interest);
            if exclusive {
                // EPOLLEXCLUSIVE only admits EPOLLIN/EPOLLOUT (plus
                // EPOLLET/EPOLLWAKEUP); combining it with EPOLLRDHUP is
                // EINVAL. Exclusive registration is for listeners, where
                // hangup notification is meaningless anyway.
                events &= EPOLLIN | EPOLLOUT;
                events |= EPOLLEXCLUSIVE;
            }
            self.ctl(EPOLL_CTL_ADD, fd as i64, events, token)
        }

        /// Change the interest set of an already registered `fd`.
        pub fn modify(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd as i64, epoll_bits(interest), token)
        }

        /// Deregister `fd`. Closing the descriptor also deregisters it
        /// implicitly; this is for keeping a still-open fd quiet.
        pub fn delete(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd as i64, 0, 0)
        }

        /// Block until readiness or `timeout_ms` (`-1` = no timeout),
        /// appending up to 256 events to `events` (cleared first).
        /// Returns the number of events delivered. `EINTR` retries.
        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            events.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                // SAFETY: `buf` is a live array of 256 epoll_events and
                // the kernel writes at most that many.
                let ret = unsafe {
                    syscall4(
                        SYS_EPOLL_WAIT,
                        self.epfd,
                        buf.as_mut_ptr() as i64,
                        buf.len() as i64,
                        timeout_ms as i64,
                    )
                };
                if ret == -EINTR {
                    continue;
                }
                break check(ret)? as usize;
            };
            for ev in &buf[..n] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(n)
        }

        /// Create a [`Waker`] registered with this poller under `token`.
        pub fn waker(&self, token: u64) -> io::Result<Waker> {
            // SAFETY: no pointer arguments.
            let fd = check(unsafe { syscall4(SYS_EVENTFD2, 0, EFD_NONBLOCK | EFD_CLOEXEC, 0, 0) })?;
            self.add(fd as i32, token, super::READ, false)?;
            Ok(Waker { inner: Arc::new(EventFd { fd }) })
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closes only the epoll fd this struct owns.
            unsafe { syscall4(SYS_CLOSE, self.epfd, 0, 0, 0) };
        }
    }

    #[derive(Debug)]
    struct EventFd {
        fd: i64,
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            // SAFETY: closes only the eventfd this struct owns.
            unsafe { syscall4(SYS_CLOSE, self.fd, 0, 0, 0) };
        }
    }

    /// Cross-thread wakeup handle for a [`Poller`]; cloneable and
    /// sendable. [`Waker::wake`] makes the poller's `wait` report the
    /// waker's token readable until [`Waker::drain`] is called.
    #[derive(Clone, Debug)]
    pub struct Waker {
        inner: Arc<EventFd>,
    }

    impl Waker {
        /// Wake the associated poller (async-signal-safe, never blocks:
        /// an eventfd counter saturates rather than filling a pipe).
        pub fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a live u64.
            unsafe {
                syscall4(SYS_WRITE, self.inner.fd, &one as *const u64 as i64, 8, 0);
            }
        }

        /// Consume pending wakeups so level-triggered polling stops
        /// reporting the waker readable.
        pub fn drain(&self) {
            let mut counter: u64 = 0;
            // SAFETY: reads 8 bytes into a live u64 (eventfd semantics:
            // one read drains the whole counter).
            unsafe {
                syscall4(SYS_READ, self.inner.fd, &mut counter as *mut u64 as i64, 8, 0);
            }
        }
    }

    #[repr(C)]
    struct RLimit64 {
        cur: u64,
        max: u64,
    }

    /// Best-effort `RLIMIT_NOFILE` raise to at least `target` file
    /// descriptors (hard limit too, when privileged). Returns the soft
    /// limit in effect afterwards — callers scale their connection
    /// counts to it instead of failing.
    pub fn raise_nofile_limit(target: u64) -> u64 {
        const RLIMIT_NOFILE: i64 = 7;
        let mut old = RLimit64 { cur: 0, max: 0 };
        // SAFETY: null new-limit pointer is the documented "query only"
        // form; `old` is a live rlimit64.
        let ret = unsafe {
            syscall4(SYS_PRLIMIT64, 0, RLIMIT_NOFILE, 0, &mut old as *mut RLimit64 as i64)
        };
        if ret != 0 {
            return 0;
        }
        if old.cur >= target {
            return old.cur;
        }
        // Privileged processes may raise the hard limit; others are
        // clamped to it. Try the full target first, then the clamp.
        for new in [
            RLimit64 { cur: target, max: target.max(old.max) },
            RLimit64 { cur: target.min(old.max), max: old.max },
        ] {
            // SAFETY: `new` is a live rlimit64; null old pointer skips
            // the read-back.
            let ret = unsafe {
                syscall4(SYS_PRLIMIT64, 0, RLIMIT_NOFILE, &new as *const RLimit64 as i64, 0)
            };
            if ret == 0 {
                return new.cur;
            }
        }
        old.cur
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod fallback {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    use super::Event;
    use std::io;

    /// Portable stand-in: tracks registrations and reports everything
    /// ready after a short sleep. Correct for nonblocking descriptors
    /// (spurious readiness costs a `WouldBlock`), inefficient by design.
    #[derive(Debug, Default)]
    pub struct Poller {
        registered: Mutex<Vec<(i32, u64, u32)>>,
        wakers: Mutex<Vec<(u64, Arc<AtomicBool>)>>,
    }

    impl Poller {
        /// Create a new (fallback) poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller::default())
        }

        /// Register `fd` under `token` (`exclusive` is ignored here).
        pub fn add(&self, fd: i32, token: u64, interest: u32, _exclusive: bool) -> io::Result<()> {
            self.registered.lock().unwrap().push((fd, token, interest));
            Ok(())
        }

        /// Replace the interest set of a registered `fd`.
        pub fn modify(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            reg.retain(|&(f, _, _)| f != fd);
            reg.push((fd, token, interest));
            Ok(())
        }

        /// Deregister `fd`.
        pub fn delete(&self, fd: i32) -> io::Result<()> {
            self.registered.lock().unwrap().retain(|&(f, _, _)| f != fd);
            Ok(())
        }

        /// Sleep briefly, then report every registration ready.
        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            events.clear();
            let ms = if timeout_ms < 0 { 5 } else { timeout_ms.min(5) as u64 };
            std::thread::sleep(Duration::from_millis(ms));
            for &(_, token, interest) in self.registered.lock().unwrap().iter() {
                events.push(Event {
                    token,
                    readable: interest & super::READ != 0,
                    writable: interest & super::WRITE != 0,
                });
            }
            for (token, flag) in self.wakers.lock().unwrap().iter() {
                if flag.load(Ordering::Acquire) {
                    events.push(Event { token: *token, readable: true, writable: false });
                }
            }
            Ok(events.len())
        }

        /// Create a [`Waker`] registered with this poller under `token`.
        pub fn waker(&self, token: u64) -> io::Result<Waker> {
            let flag = Arc::new(AtomicBool::new(false));
            self.wakers.lock().unwrap().push((token, Arc::clone(&flag)));
            Ok(Waker { flag })
        }
    }

    /// Cross-thread wakeup handle (fallback: a shared flag the poller
    /// checks each sleep tick).
    #[derive(Clone, Debug)]
    pub struct Waker {
        flag: Arc<AtomicBool>,
    }

    impl Waker {
        /// Wake the associated poller.
        pub fn wake(&self) {
            self.flag.store(true, Ordering::Release);
        }

        /// Consume pending wakeups.
        pub fn drain(&self) {
            self.flag.store(false, Ordering::Release);
        }
    }

    /// No-op on non-Linux targets; returns 0 ("unknown").
    pub fn raise_nofile_limit(_target: u64) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    use super::*;

    #[test]
    fn tcp_readiness_roundtrip() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        poller.add(raw_fd(&listener), 1, READ, false).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait returns empty.
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 1 || cfg!(not(target_os = "linux"))));

        let mut client = TcpStream::connect(addr).unwrap();
        wait_for_token(&poller, &mut events, 1);
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.add(raw_fd(&server), 2, READ, false).unwrap();

        client.write_all(b"ping").unwrap();
        wait_for_token(&poller, &mut events, 2);
        let mut server = server;
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Interest can be switched to writable and back.
        poller.modify(raw_fd(&server), 2, READ | WRITE).unwrap();
        wait_for_writable(&poller, &mut events, 2);
        poller.delete(raw_fd(&server)).unwrap();
    }

    #[test]
    fn waker_wakes_a_blocked_wait_promptly() {
        let poller = Poller::new().unwrap();
        let waker = poller.waker(7).unwrap();
        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });
        let start = Instant::now();
        let mut events = Vec::new();
        // A long timeout that the waker must cut short.
        loop {
            poller.wait(&mut events, 5_000).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(start.elapsed() < Duration::from_secs(4), "waker never fired");
        }
        assert!(start.elapsed() < Duration::from_secs(2), "wait did not return promptly");
        waker.drain();
        handle.join().unwrap();
    }

    #[test]
    fn nofile_limit_query_is_sane() {
        // Whatever the privilege level, asking for a tiny target
        // reports a limit at least that large on Linux.
        let got = raise_nofile_limit(64);
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(got >= 64, "soft limit {got} below trivial target");
        }
    }

    fn raw_fd<T: std::os::fd::AsRawFd>(s: &T) -> i32 {
        s.as_raw_fd()
    }

    fn wait_for_token(poller: &Poller, events: &mut Vec<Event>, token: u64) {
        let start = Instant::now();
        loop {
            poller.wait(events, 1_000).unwrap();
            if events.iter().any(|e| e.token == token && e.readable) {
                return;
            }
            assert!(start.elapsed() < Duration::from_secs(5), "token {token} never readable");
        }
    }

    fn wait_for_writable(poller: &Poller, events: &mut Vec<Event>, token: u64) {
        let start = Instant::now();
        loop {
            poller.wait(events, 1_000).unwrap();
            if events.iter().any(|e| e.token == token && e.writable) {
                return;
            }
            assert!(start.elapsed() < Duration::from_secs(5), "token {token} never writable");
        }
    }
}
