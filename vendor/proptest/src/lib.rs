//! A compact, dependency-free stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored so the
//! workspace builds offline.
//!
//! Implements the subset this repository's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//!   implemented for integer ranges, tuples, and [`strategy::Just`];
//! * [`collection::vec`] / [`collection::btree_set`] with flexible size
//!   specifications, and [`option::weighted`];
//! * the [`proptest!`] macro plus [`prop_assert!`], [`prop_assert_eq!`]
//!   and [`prop_assume!`];
//! * a deterministic runner ([`test_runner::run_cases`]) driven by a fixed
//!   seed so failures reproduce exactly.
//!
//! Unlike the real crate there is **no shrinking**: a failing case reports
//! the case number and message and panics immediately.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Inclusive bounds on a generated collection's element count.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Sets built from `size` draws of `element` (duplicates collapse, so
    /// the result may be smaller than the drawn size).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// `Some(value)` with probability `p`, `None` otherwise.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> WeightedOption<S> {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        WeightedOption { p, inner }
    }

    /// See [`weighted`].
    #[derive(Clone, Debug)]
    pub struct WeightedOption<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            if rng.gen_bool(self.p) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! The case loop driving [`crate::proptest!`]-generated tests.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed; the test fails.
        Fail(String),
        /// A `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration (accepted fields of the real crate's
    /// `ProptestConfig` that this stand-in honours).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Total `prop_assume!` rejections tolerated before giving up on
        /// finding further satisfying inputs.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 4096 }
        }
    }

    /// Drive `case` until `config.cases` successes. Deterministic: the RNG
    /// seed is fixed, so a failure reproduces on every run.
    ///
    /// # Panics
    /// On the first failing case, and when `max_global_rejects` is
    /// exhausted before `cases` successes (matching the real crate's
    /// "too many global rejects" error — assumptions that filter out
    /// every input must fail the test, not skip it).
    pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
    where
        F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
    {
        let mut rng = SmallRng::seed_from_u64(0x5EED_CA5E_0000_0001);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "{test_name}: too many global rejects ({rejected}; last: {reason}), \
                             only {passed}/{} cases passed",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: case {passed} failed: {msg}");
                }
            }
        }
    }
}

/// Define property tests: each `fn` runs its body against many generated
/// inputs. Mirrors the real crate's surface syntax, without shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(&($cfg), stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Fail the surrounding property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the surrounding property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Discard the current case (retry with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    //! One-stop imports for property tests.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_combinators_compose() {
        let strat = (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0i64..10, n)).prop_map(|(n, v)| {
                assert_eq!(v.len(), n);
                v
            })
        });
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }

    #[test]
    fn weighted_option_hits_both_arms() {
        let strat = crate::option::weighted(0.5, 0i64..3);
        let mut rng = SmallRng::seed_from_u64(2);
        let draws: Vec<_> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_working_tests(x in 0u64..100, y in 0u64..100) {
            prop_assume!(x != 99);
            prop_assert!(x < 100, "x out of range: {}", x);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
