//! A small, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, vendored so the workspace builds offline.
//!
//! It implements exactly the API surface this repository uses, with
//! `rand 0.8` naming:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::SmallRng`] (xoshiro256++,
//!   seeded via SplitMix64 — deterministic across platforms);
//! * [`seq::SliceRandom`] (`choose`, `shuffle`) and [`seq::index::sample`];
//! * the [`distributions::Standard`] / [`distributions::Distribution`] pair
//!   backing `rng.gen()`.
//!
//! Streams are deterministic for a given seed but are **not** the same
//! streams the real `rand` crate produces; all in-repo seeds and tests are
//! calibrated against this implementation.

/// The core of every generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution
    /// (`f64`/`f32` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }
}

pub mod distributions {
    //! The `Distribution` / `Standard` pair behind `rng.gen()`, plus the
    //! uniform-range machinery behind `rng.gen_range(..)`.

    use super::RngCore;

    /// Types that can produce values of `T` given a source of randomness.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type: `[0, 1)` for floats,
    /// full-range for integers, fair coin for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub mod uniform {
        //! Uniform sampling from ranges.

        use crate::RngCore;

        /// Range shapes accepted by [`crate::Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Draw one value from the range.
            ///
            /// # Panics
            /// If the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// `v` uniform in `[0, span)` via multiply-shift on a `u64` draw.
        fn bounded(rng: &mut (impl RngCore + ?Sized), span: u128) -> u128 {
            debug_assert!(span > 0);
            (u128::from(rng.next_u64()) * span) >> 64
        }

        macro_rules! int_sample_range {
            ($($t:ty),* $(,)?) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        (self.start as i128 + bounded(rng, span) as i128) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        (lo as i128 + bounded(rng, span) as i128) as $t
                    }
                }
            )*};
        }

        int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

        macro_rules! float_sample_range {
            ($($t:ty),* $(,)?) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                        self.start + u * (self.end - self.start)
                    }
                }
            )*};
        }

        float_sample_range!(f32, f64);
    }
}

pub mod seq {
    //! Sequence-related helpers: slice choosing/shuffling and
    //! sampling of distinct indices.

    use super::distributions::uniform::SampleRange;
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_single(rng))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, (0..=i).sample_single(rng));
            }
        }
    }

    pub mod index {
        //! Sampling distinct indices from `0..length`.

        use crate::distributions::uniform::SampleRange;
        use crate::RngCore;

        /// A set of distinct indices, in selection order.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices uniformly from `0..length`
        /// via a partial Fisher–Yates pass.
        ///
        /// # Panics
        /// If `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} indices from 0..{length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = (i..length).sample_single(rng);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::index;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.0f64..2.0);
            assert!((0.0..2.0).contains(&f));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_covers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let picked = index::sample(&mut rng, 100, 30).into_vec();
        assert_eq!(picked.len(), 30);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 30);
        assert!(picked.iter().all(|&i| i < 100));
    }
}
